//! Bit-for-bit equivalence of the event-driven transition fault simulator
//! against the frozen legacy full-cone replica
//! ([`flh_bench::transition_baseline`]), across ISCAS89 profiles, the
//! paper's three holding styles, and pool widths 1/2/4 vs serial.
//!
//! The deviation-replay rebuild of [`TransitionSimulator`] changes *how*
//! the faulty V2 machine is computed (event-driven from the fault site,
//! changed-observation-driver detection, abort on the first activation-lane
//! miscompare) but must never change *what* is detected. This suite holds
//! that on all three result surfaces:
//!
//! * per-batch detected flags (`run_batch`);
//! * N-detect hit counts (`run_batch_counting`, whose replay runs to
//!   quiescence — the early-exit path must not leak into the counts);
//! * whole-campaign coverage (`simulate_transition_patterns_partitioned`
//!   at pools 1, 2 and 4, and the end-to-end
//!   [`random_transition_campaign_pooled`] vs its serial twin).

use flh_atpg::{
    enumerate_transition_faults, random_transition_campaign, random_transition_campaign_pooled,
    simulate_transition_patterns_partitioned, ApplicationStyle, TestView, TransitionFault,
    TransitionPattern, TransitionSimulator,
};
use flh_bench::build_circuit;
use flh_bench::transition_baseline::{baseline_transition_detects, BaselineTransitionSimulator};
use flh_core::{apply_style, DftStyle};
use flh_exec::ThreadPool;
use flh_netlist::{iscas89_profile, Packed256, PatternWord};
use flh_rng::Rng;

const CIRCUITS: [&str; 3] = ["s1423", "s5378", "s9234"];
const STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];
const POOLS: [usize; 3] = [1, 2, 4];
const PAIRS: usize = 96;
const MAX_FAULTS: usize = 900;
const NDETECT_TARGET: u32 = 4;

/// Every k-th element, keeping the debug-build runtime bounded while still
/// spanning the whole id range (and thus every partition boundary).
fn subsample<T: Clone>(items: &[T], max: usize) -> Vec<T> {
    let step = items.len().div_ceil(max).max(1);
    items.iter().step_by(step).cloned().collect()
}

fn random_pairs(rng: &mut Rng, n: usize, count: usize) -> Vec<TransitionPattern> {
    (0..count)
        .map(|_| TransitionPattern {
            v1: (0..n).map(|_| rng.gen()).collect(),
            v2: (0..n).map(|_| rng.gen()).collect(),
        })
        .collect()
}

fn pack64(pairs: &[TransitionPattern], n: usize) -> (Vec<u64>, Vec<u64>, u64) {
    let chunk = &pairs[..pairs.len().min(64)];
    let mut v1_words = vec![0u64; n];
    let mut v2_words = vec![0u64; n];
    for (lane, p) in chunk.iter().enumerate() {
        for i in 0..n {
            if p.v1[i] {
                v1_words[i] |= 1 << lane;
            }
            if p.v2[i] {
                v2_words[i] |= 1 << lane;
            }
        }
    }
    let mask = if chunk.len() == 64 {
        !0
    } else {
        (1u64 << chunk.len()) - 1
    };
    (v1_words, v2_words, mask)
}

#[test]
fn event_driven_transition_sim_matches_legacy_full_cone() {
    for circuit_name in CIRCUITS {
        let profile = iscas89_profile(circuit_name).expect("profile present");
        let circuit = build_circuit(&profile);
        for (si, &style) in STYLES.iter().enumerate() {
            let dft = apply_style(&circuit, style)
                .unwrap_or_else(|e| panic!("{circuit_name} / {style}: {e}"));
            let n = &dft.netlist;
            let view = TestView::new(n).expect("acyclic after scan insertion");
            let na = view.assignable().len();
            let faults: Vec<TransitionFault> =
                subsample(&enumerate_transition_faults(n), MAX_FAULTS);
            let mut rng = Rng::seed_from_u64(0x7E0 + si as u64);
            let pairs = random_pairs(&mut rng, na, PAIRS);

            // Whole-set detection: legacy serial full-cone vs the
            // event-driven path at every pool width.
            let legacy = baseline_transition_detects(&view, &faults, &pairs);
            assert!(
                legacy.iter().any(|&d| d),
                "{circuit_name} / {style}: campaign detected nothing"
            );
            for &workers in &POOLS {
                let pool = ThreadPool::new(workers);
                assert_eq!(
                    simulate_transition_patterns_partitioned(&view, &faults, &pairs, &pool),
                    legacy,
                    "{circuit_name} / {style}: coverage diverged from legacy at {workers} workers"
                );
            }

            // Single-batch detected flags and N-detect hit counts. The
            // legacy replica is 64-lane; the event-driven side takes the
            // same lanes widened into the low limb of a superword.
            let (v1_words, v2_words, mask) = pack64(&pairs, na);
            let w1: Vec<Packed256> = v1_words.iter().map(|&w| Packed256::from_word(w)).collect();
            let w2: Vec<Packed256> = v2_words.iter().map(|&w| Packed256::from_word(w)).collect();
            let wmask = Packed256::mask_lanes(pairs.len().min(64));
            let mut legacy_sim = BaselineTransitionSimulator::new(&view);
            let mut event_sim = TransitionSimulator::new(&view);

            let mut d_legacy = vec![false; faults.len()];
            let mut d_event = vec![false; faults.len()];
            let h_legacy = legacy_sim.run_batch(&v1_words, &v2_words, mask, &faults, &mut d_legacy);
            let h_event = event_sim.run_batch(&w1, &w2, wmask, &faults, &mut d_event);
            assert_eq!(
                (h_legacy, d_legacy),
                (h_event, d_event),
                "{circuit_name} / {style}: run_batch diverged from legacy"
            );

            let mut c_legacy = vec![0u32; faults.len()];
            let mut c_event = vec![0u32; faults.len()];
            let s_legacy = legacy_sim.run_batch_counting(
                &v1_words,
                &v2_words,
                mask,
                &faults,
                &mut c_legacy,
                NDETECT_TARGET,
            );
            let s_event = event_sim.run_batch_counting(
                &w1,
                &w2,
                wmask,
                &faults,
                &mut c_event,
                NDETECT_TARGET,
            );
            assert_eq!(
                (s_legacy, c_legacy),
                (s_event, c_event),
                "{circuit_name} / {style}: run_batch_counting diverged from legacy"
            );
        }
    }
}

#[test]
fn pooled_campaign_coverage_matches_serial() {
    let circuit = build_circuit(&iscas89_profile("s1423").expect("profile present"));
    for (si, &style) in STYLES.iter().enumerate() {
        let dft = apply_style(&circuit, style).unwrap_or_else(|e| panic!("{style}: {e}"));
        let n = &dft.netlist;
        let seed = 0xCA4 + si as u64;
        let serial = random_transition_campaign(n, ApplicationStyle::ArbitraryTwoPattern, 48, seed)
            .expect("campaign runs");
        for &workers in &POOLS {
            let pooled = random_transition_campaign_pooled(
                n,
                ApplicationStyle::ArbitraryTwoPattern,
                48,
                seed,
                &ThreadPool::new(workers),
            )
            .expect("campaign runs");
            assert_eq!(
                (pooled.detected, pooled.total_faults, pooled.pairs),
                (serial.detected, serial.total_faults, serial.pairs),
                "{style}: campaign coverage diverged at {workers} workers"
            );
        }
    }
}
