//! Negative coverage: every `FLH0xx` code must fire on a netlist corrupted
//! in exactly the way the code describes — and only break the passes it
//! should. Corruptions go through the `corrupt_*` hooks on `Netlist`, which
//! bypass the builder invariants on purpose.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use flh_core::{apply_style, DftStyle};
use flh_lint::{lint_profile, lint_target, LintCode, LintReport, LintTarget, Severity};
use flh_netlist::{CellId, CellKind, CircuitProfile, Netlist};

/// Two flip-flops, three gates, everything observable: lints clean.
fn fixture() -> Netlist {
    let mut n = Netlist::new("fixture");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
    let f2 = n.add_cell("f2", CellKind::Dff, vec![b]);
    let g1 = n.add_cell("g1", CellKind::Nand2, vec![f1, f2]);
    let g2 = n.add_cell("g2", CellKind::Inv, vec![f1]);
    let g3 = n.add_cell("g3", CellKind::Nor2, vec![g1, g2]);
    n.add_output("y", g3);
    n
}

fn lint_bare(netlist: Netlist) -> LintReport {
    lint_target(&LintTarget::bare(netlist))
}

#[test]
fn fixture_is_clean_bare_and_under_every_style() {
    let report = lint_bare(fixture());
    assert_eq!(report.error_count(), 0, "{}", report.render_text());
    assert_eq!(report.warning_count(), 0, "{}", report.render_text());
    for style in [
        DftStyle::PlainScan,
        DftStyle::EnhancedScan,
        DftStyle::MuxHold,
        DftStyle::Flh,
    ] {
        let dft = apply_style(&fixture(), style).unwrap();
        let report = lint_target(&LintTarget::from_dft(dft));
        assert_eq!(report.error_count(), 0, "{}", report.render_text());
        assert!(report.skipped_passes.is_empty());
    }
}

// --- one corruption scenario per code ----------------------------------

fn scenario_target_error() -> LintReport {
    // Zero primary inputs is an unsatisfiable generator shape.
    let profile = CircuitProfile {
        name: "impossible",
        primary_inputs: 0,
        primary_outputs: 1,
        flip_flops: 2,
        gates: 10,
        logic_depth: 3,
        avg_ff_fanout: 2.0,
        unique_flg_ratio: 1.8,
        hot_ff_fanout: None,
    };
    lint_profile(&profile, DftStyle::Flh)
}

fn scenario_cycle() -> LintReport {
    let mut n = fixture();
    let g1 = n.find("g1").unwrap();
    let g3 = n.find("g3").unwrap();
    n.set_fanin_pin(g1, 1, g3); // g1 -> g3 -> g1
    lint_bare(n)
}

fn scenario_dangling_fanin() -> LintReport {
    let mut n = fixture();
    let g2 = n.find("g2").unwrap();
    n.corrupt_set_fanin(g2, vec![CellId::from_index(9999)]);
    lint_bare(n)
}

fn scenario_arity_mismatch() -> LintReport {
    let mut n = fixture();
    let g1 = n.find("g1").unwrap();
    let f1 = n.find("f1").unwrap();
    n.corrupt_set_fanin(g1, vec![f1]); // NAND2 with one pin
    lint_bare(n)
}

fn scenario_multi_driver() -> LintReport {
    let mut n = fixture();
    let a = n.find("a").unwrap();
    n.corrupt_add_cell("g1", CellKind::Inv, vec![a]); // second driver of "g1"
    lint_bare(n)
}

fn scenario_dead_cone() -> LintReport {
    let mut n = fixture();
    let a = n.find("a").unwrap();
    let dead = n.add_cell("dead1", CellKind::Inv, vec![a]);
    n.add_cell("dead2", CellKind::Inv, vec![dead]);
    lint_bare(n)
}

fn scenario_output_fanout() -> LintReport {
    let mut n = fixture();
    let y = n.find("y").unwrap();
    n.add_cell("snoop", CellKind::Inv, vec![y]); // reads the PO marker
    lint_bare(n)
}

fn scenario_port_registry() -> LintReport {
    let mut n = fixture();
    let y = n.find("y").unwrap();
    n.corrupt_unregister_output(y); // dangling PO marker
    n.corrupt_add_cell("rogue_pi", CellKind::Input, Vec::new()); // unregistered PI
    lint_bare(n)
}

fn scenario_hold_leak() -> LintReport {
    // Enhanced scan, then rewire one gate to bypass its hold latch.
    let mut dft = apply_style(&fixture(), DftStyle::EnhancedScan).unwrap();
    let f1 = dft.netlist.find("f1").unwrap();
    let g2 = dft.netlist.find("g2").unwrap();
    dft.netlist.set_fanin_pin(g2, 0, f1);
    lint_target(&LintTarget::from_dft(dft))
}

fn scenario_scan_chain() -> LintReport {
    let dft = apply_style(&fixture(), DftStyle::Flh).unwrap();
    let mut target = LintTarget::from_dft(dft);
    let chain = target.scan_chain.as_mut().unwrap();
    let first = chain[0];
    chain[0] = chain[1]; // duplicate f2, drop f1 from the chain
    let _ = first;
    target.netlist.corrupt_retype(
        *target.netlist.flip_flops().last().unwrap(),
        CellKind::Dff, // unscanned DFF under a DFT style
    );
    lint_target(&target)
}

fn scenario_flh_coverage() -> LintReport {
    let mut dft = apply_style(&fixture(), DftStyle::Flh).unwrap();
    // Drop one first-level gate from the gated (and keeper) set.
    dft.gated.pop().unwrap();
    dft.keepers = dft.gated.clone();
    lint_target(&LintTarget::from_dft(dft))
}

fn scenario_keeper_missing() -> LintReport {
    let mut dft = apply_style(&fixture(), DftStyle::Flh).unwrap();
    dft.keepers.clear(); // gated outputs with no keepers
    lint_target(&LintTarget::from_dft(dft))
}

fn scenario_illegal_gating() -> LintReport {
    let mut dft = apply_style(&fixture(), DftStyle::Flh).unwrap();
    let g3 = dft.netlist.find("g3").unwrap(); // second-level gate
    let f1 = dft.netlist.find("f1").unwrap(); // not a gate at all
    dft.gated.push(g3);
    dft.gated.push(f1);
    dft.keepers = dft.gated.clone();
    lint_target(&LintTarget::from_dft(dft))
}

fn scenario_style_consistency() -> LintReport {
    let mut dft = apply_style(&fixture(), DftStyle::EnhancedScan).unwrap();
    // One hold latch retyped to the MUX style: mixed-style netlist.
    let h = dft.hold_cells[0];
    dft.netlist.corrupt_retype(h, CellKind::HoldMux);
    lint_target(&LintTarget::from_dft(dft))
}

fn scenario_unmapped_generic() -> LintReport {
    let mut n = fixture();
    let a = n.find("a").unwrap();
    let b = n.find("b").unwrap();
    let g1 = n.find("g1").unwrap();
    let wide = n.add_cell("wide", CellKind::AndN(3), vec![a, b, g1]);
    let g3 = n.find("g3").unwrap();
    let y = n.find("y").unwrap();
    let _ = (g3, wide);
    // Keep the wide gate observable so only FLH014 fires.
    n.set_fanin_pin(y, 0, wide);
    lint_bare(n)
}

fn scenario_constant_net() -> LintReport {
    // A gate tied to constant zero: FLH024 (constant net), FLH027 (its
    // stuck-at-0 is unactivatable) and FLH028 (no transition at a constant).
    let mut n = fixture();
    let f1 = n.find("f1").unwrap();
    let tie = n.add_cell("tie0", CellKind::Const0, Vec::new());
    let gc = n.add_cell("gc", CellKind::And2, vec![f1, tie]);
    n.add_output("y2", gc);
    lint_bare(n)
}

// --- assertions ---------------------------------------------------------

#[track_caller]
fn assert_fires(report: &LintReport, code: LintCode) {
    assert!(
        report.fired(code),
        "expected {code} in:\n{}",
        report.render_text()
    );
}

#[test]
fn target_error_fires_flh000() {
    let r = scenario_target_error();
    assert_fires(&r, LintCode::TargetError);
    assert_eq!(r.style.as_deref(), Some("FLH"));
}

#[test]
fn combinational_cycle_fires_flh001() {
    assert_fires(&scenario_cycle(), LintCode::CombinationalCycle);
}

#[test]
fn dangling_fanin_fires_flh002_and_gates_graph_passes() {
    let r = scenario_dangling_fanin();
    assert_fires(&r, LintCode::DanglingFanin);
    assert!(
        r.skipped_passes.contains(&"cycles"),
        "graph passes must be skipped on an unsound graph: {:?}",
        r.skipped_passes
    );
}

#[test]
fn arity_mismatch_fires_flh003() {
    let r = scenario_arity_mismatch();
    assert_fires(&r, LintCode::ArityMismatch);
    assert!(!r.skipped_passes.is_empty());
}

#[test]
fn multi_driver_fires_flh004() {
    assert_fires(&scenario_multi_driver(), LintCode::MultiDriver);
}

#[test]
fn dead_cone_fires_flh005_as_warning() {
    let r = scenario_dead_cone();
    assert_fires(&r, LintCode::UnreachableGate);
    assert_eq!(r.error_count(), 0, "dead cones are warnings, not errors");
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::UnreachableGate)
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.cells.contains(&"dead1".to_string()));
    assert!(d.cells.contains(&"dead2".to_string()));
}

#[test]
fn output_fanout_fires_flh006() {
    assert_fires(&scenario_output_fanout(), LintCode::OutputHasFanout);
}

#[test]
fn port_registry_fires_flh007_for_unregistered_boundary_cells() {
    let r = scenario_port_registry();
    assert_fires(&r, LintCode::PortRegistry);
    let cells: Vec<&str> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::PortRegistry)
        .flat_map(|d| d.cells.iter().map(String::as_str))
        .collect();
    assert!(cells.contains(&"y"), "dangling PO must be named: {cells:?}");
    assert!(cells.contains(&"rogue_pi"));
}

#[test]
fn hold_bypass_fires_flh008_and_flh013() {
    let r = scenario_hold_leak();
    assert_fires(&r, LintCode::HoldLeak);
    assert_fires(&r, LintCode::StyleConsistency); // g2 bypasses the latch
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::HoldLeak)
        .unwrap();
    // g2 sees the raw flip-flop; g3 reads g2, so the taint spreads.
    assert!(d.cells.contains(&"g2".to_string()));
    assert!(d.cells.contains(&"g3".to_string()));
}

#[test]
fn broken_chain_fires_flh009() {
    let r = scenario_scan_chain();
    assert_fires(&r, LintCode::ScanChain);
    let messages: String = r
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::ScanChain)
        .map(|d| d.message.clone())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("more than once"), "{messages}");
    assert!(
        messages.contains("missing from the scan chain"),
        "{messages}"
    );
    assert!(messages.contains("plain DFF"), "{messages}");
}

#[test]
fn coverage_hole_fires_flh010_and_leaks() {
    let r = scenario_flh_coverage();
    assert_fires(&r, LintCode::FlhCoverage);
    // The ungated first-level gate also exposes the shifting scan state.
    assert_fires(&r, LintCode::HoldLeak);
}

#[test]
fn missing_keepers_fire_flh011() {
    assert_fires(&scenario_keeper_missing(), LintCode::KeeperMissing);
}

#[test]
fn illegal_gating_fires_flh012() {
    let r = scenario_illegal_gating();
    let illegal: Vec<&str> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::IllegalGating)
        .flat_map(|d| d.cells.iter().map(String::as_str))
        .collect();
    assert!(illegal.contains(&"g3"), "second-level gate: {illegal:?}");
    assert!(illegal.contains(&"f1"), "non-gate: {illegal:?}");
}

#[test]
fn mixed_hold_styles_fire_flh013() {
    assert_fires(&scenario_style_consistency(), LintCode::StyleConsistency);
}

#[test]
fn generic_gates_fire_flh014_as_warning() {
    let r = scenario_unmapped_generic();
    assert_fires(&r, LintCode::UnmappedGeneric);
    assert_eq!(r.error_count(), 0, "{}", r.render_text());
}

#[test]
fn constant_net_fires_flh024_and_static_untestability() {
    let r = scenario_constant_net();
    assert_fires(&r, LintCode::ConstantNet);
    assert_fires(&r, LintCode::StaticUntestableStuck);
    assert_fires(&r, LintCode::StaticUntestableTransition);
    assert_eq!(r.error_count(), 0, "{}", r.render_text());
}

#[test]
fn dead_cone_also_fires_flh025_on_the_compiled_form() {
    // The netlist-level dead cone (FLH005) must show up as dead compiled
    // instructions too — the two liveness views agree.
    assert_fires(&scenario_dead_cone(), LintCode::DeadInstruction);
}

/// The acceptance bar: the scenario suite exercises every netlist-level
/// code. The program-level codes (bytecode verifier FLH015-023 and the
/// X-taint cross-check FLH026) need a corrupted *program*, not a corrupted
/// netlist — `tests/corrupted_program.rs` has the matching completeness
/// test for those.
#[test]
fn every_code_is_exercised_by_some_scenario() {
    let scenarios = [
        scenario_target_error(),
        scenario_cycle(),
        scenario_dangling_fanin(),
        scenario_arity_mismatch(),
        scenario_multi_driver(),
        scenario_dead_cone(),
        scenario_output_fanout(),
        scenario_port_registry(),
        scenario_hold_leak(),
        scenario_scan_chain(),
        scenario_flh_coverage(),
        scenario_keeper_missing(),
        scenario_illegal_gating(),
        scenario_style_consistency(),
        scenario_unmapped_generic(),
        scenario_constant_net(),
    ];
    let program_level = [
        "FLH015", "FLH016", "FLH017", "FLH018", "FLH019", "FLH020", "FLH021", "FLH022", "FLH023",
        "FLH026",
    ];
    let fired: BTreeSet<LintCode> = scenarios.iter().flat_map(|r| r.codes()).collect();
    for code in LintCode::ALL {
        if program_level.contains(&code.code()) {
            continue; // covered by tests/corrupted_program.rs
        }
        assert!(fired.contains(&code), "no scenario fires {code}");
    }
    assert!(fired.len() >= 10);
}
