//! Negative coverage for the bytecode verifier (FLH015-023) and the
//! compiled-form X-taint cross-check (FLH026): every corruption hook on
//! `Program` maps to exactly the lint code that names the broken invariant.
//!
//! Corrupted programs are injected with `LintTarget::with_program`, so the
//! full lint pipeline (pass registry, severity policy, report shape) runs
//! against the mutated stream — these are end-to-end tests, not unit tests
//! of `verify_program`.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;
use std::sync::Arc;

use flh_core::{apply_style, DftStyle};
use flh_lint::{lint_target, LintCode, LintReport, LintTarget};
use flh_netlist::{CellKind, CompiledCircuit, Netlist, Program};

const INST_WORDS: usize = 6;

/// Seven inputs so the `AndN(7)` gate lowers to a two-instruction chain
/// through a scratch register — the shape the scratch-order check guards.
fn fixture() -> Netlist {
    let mut n = Netlist::new("pfixture");
    let ins: Vec<_> = (0..7).map(|i| n.add_input(&format!("a{i}"))).collect();
    let f1 = n.add_cell("f1", CellKind::Dff, vec![ins[0]]);
    let f2 = n.add_cell("f2", CellKind::Dff, vec![ins[1]]);
    let wide = n.add_cell("wide", CellKind::AndN(7), ins.clone());
    let g1 = n.add_cell("g1", CellKind::Nand2, vec![f1, f2]);
    let g2 = n.add_cell("g2", CellKind::Xor2, vec![g1, wide]);
    n.add_output("y", g2);
    n
}

/// Compile + lower the fixture, apply one corruption, lint the result.
fn corrupted_report(corrupt: impl FnOnce(&CompiledCircuit, &mut Program)) -> LintReport {
    let n = fixture();
    let compiled = CompiledCircuit::compile_shared(&n).unwrap();
    let mut program = Program::lower(&compiled);
    corrupt(&compiled, &mut program);
    lint_target(&LintTarget::bare(n).with_program(compiled, Arc::new(program)))
}

/// First instruction writing a scratch slot (the head of the wide chain).
fn scratch_writer(p: &Program) -> usize {
    (0..p.inst_count())
        .find(|&i| p.decode_inst(i).dst >= p.cell_words() as u32)
        .unwrap()
}

/// First instruction rooting a real cell (dst below the scratch window).
fn cell_rooter(p: &Program) -> usize {
    (0..p.inst_count())
        .find(|&i| p.decode_inst(i).dst < p.cell_words() as u32)
        .unwrap()
}

#[track_caller]
fn assert_fires(report: &LintReport, code: LintCode) {
    assert!(
        report.fired(code),
        "expected {code} in:\n{}",
        report.render_text()
    );
    assert!(report.has_errors(), "bytecode corruption must be an Error");
}

#[test]
fn pristine_program_verifies_clean() {
    let r = corrupted_report(|_, _| {});
    assert_eq!(r.error_count(), 0, "{}", r.render_text());
}

#[test]
fn truncated_stream_fires_flh015() {
    let r = corrupted_report(|_, p| p.corrupt_truncate_words(INST_WORDS));
    assert_fires(&r, LintCode::BytecodeTruncated);
}

#[test]
fn ragged_stream_fires_flh015() {
    let r = corrupted_report(|_, p| p.corrupt_truncate_words(INST_WORDS + 1));
    assert_fires(&r, LintCode::BytecodeTruncated);
}

#[test]
fn illegal_opcode_fires_flh016() {
    let r = corrupted_report(|_, p| p.corrupt_opcode(0, 0xEE));
    assert_fires(&r, LintCode::BytecodeBadOpcode);
}

#[test]
fn arity_out_of_range_fires_flh017() {
    let r = corrupted_report(|_, p| p.corrupt_nops(0, 15));
    assert_fires(&r, LintCode::BytecodeBadArity);
}

#[test]
fn operand_slot_out_of_range_fires_flh018() {
    let r = corrupted_report(|_, p| {
        let huge = (p.cell_words() + p.scratch_words() + 999) as u32;
        p.corrupt_operand(0, 0, huge);
    });
    assert_fires(&r, LintCode::BytecodeOperandRange);
}

#[test]
fn dst_slot_out_of_range_fires_flh019() {
    let r = corrupted_report(|_, p| {
        let huge = (p.cell_words() + p.scratch_words() + 999) as u32;
        p.corrupt_dst(0, huge);
    });
    assert_fires(&r, LintCode::BytecodeDstRange);
}

#[test]
fn scratch_read_before_write_fires_flh020() {
    let r = corrupted_report(|_, p| {
        let i = scratch_writer(p);
        // The chain head reads its own (still unwritten) scratch slot.
        p.corrupt_operand(i, 0, p.cell_words() as u32);
    });
    assert_fires(&r, LintCode::BytecodeScratchOrder);
}

#[test]
fn same_level_operand_fires_flh021() {
    let r = corrupted_report(|_, p| {
        let i = cell_rooter(p);
        let dst = p.decode_inst(i).dst;
        // An instruction consuming its own destination violates level order.
        p.corrupt_operand(i, 0, dst);
    });
    assert_fires(&r, LintCode::BytecodeOperandLevel);
}

#[test]
fn batch_level_lie_fires_flh022() {
    let r = corrupted_report(|_, p| p.corrupt_batch_level(0, 77));
    assert_fires(&r, LintCode::BytecodeBatchLevel);
}

#[test]
fn hold_bit_on_plain_gate_fires_flh023() {
    let r = corrupted_report(|_, p| {
        let i = cell_rooter(p);
        p.corrupt_toggle_hold(i);
    });
    assert_fires(&r, LintCode::BytecodeChainMismatch);
}

#[test]
fn chain_table_lie_fires_flh023() {
    let r = corrupted_report(|_, p| {
        // Zero-length chain for a cell the stream actually roots.
        let cell = p.decode_inst(cell_rooter(p)).dst;
        p.corrupt_chain(cell, 0, 0);
    });
    assert_fires(&r, LintCode::BytecodeChainMismatch);
}

#[test]
fn hold_bit_cleared_on_hold_cell_fires_flh026() {
    // Enhanced scan inserts hold latches; clearing one instruction's hold
    // bit makes the compiled taint walk leak where the netlist walk holds.
    let dft = apply_style(&fixture(), DftStyle::EnhancedScan).unwrap();
    let compiled = CompiledCircuit::compile_shared(&dft.netlist).unwrap();
    let mut program = Program::lower(&compiled);
    let hold_inst = (0..program.inst_count())
        .find(|&i| program.decode_inst(i).hold)
        .unwrap();
    program.corrupt_toggle_hold(hold_inst);
    let r = lint_target(&LintTarget::from_dft(dft).with_program(compiled, Arc::new(program)));
    assert_fires(&r, LintCode::XTaintMismatch);
    // The verifier independently flags the header/kind disagreement.
    assert_fires(&r, LintCode::BytecodeChainMismatch);
}

/// Completeness over the program-level codes: FLH015-023 and FLH026 are all
/// reachable from the corruption hooks (the netlist-level codes are covered
/// by `tests/corrupted.rs`).
#[test]
fn every_program_level_code_is_exercised() {
    let scenarios = [
        corrupted_report(|_, p| p.corrupt_truncate_words(INST_WORDS)),
        corrupted_report(|_, p| p.corrupt_opcode(0, 0xEE)),
        corrupted_report(|_, p| p.corrupt_nops(0, 15)),
        corrupted_report(|_, p| {
            let huge = (p.cell_words() + p.scratch_words() + 999) as u32;
            p.corrupt_operand(0, 0, huge);
        }),
        corrupted_report(|_, p| {
            let huge = (p.cell_words() + p.scratch_words() + 999) as u32;
            p.corrupt_dst(0, huge);
        }),
        corrupted_report(|_, p| {
            let i = scratch_writer(p);
            p.corrupt_operand(i, 0, p.cell_words() as u32);
        }),
        corrupted_report(|_, p| {
            let i = cell_rooter(p);
            let dst = p.decode_inst(i).dst;
            p.corrupt_operand(i, 0, dst);
        }),
        corrupted_report(|_, p| p.corrupt_batch_level(0, 77)),
        corrupted_report(|_, p| {
            let i = cell_rooter(p);
            p.corrupt_toggle_hold(i);
        }),
        {
            let dft = apply_style(&fixture(), DftStyle::EnhancedScan).unwrap();
            let compiled = CompiledCircuit::compile_shared(&dft.netlist).unwrap();
            let mut program = Program::lower(&compiled);
            let hold_inst = (0..program.inst_count())
                .find(|&i| program.decode_inst(i).hold)
                .unwrap();
            program.corrupt_toggle_hold(hold_inst);
            lint_target(&LintTarget::from_dft(dft).with_program(compiled, Arc::new(program)))
        },
    ];
    let fired: BTreeSet<LintCode> = scenarios.iter().flat_map(|r| r.codes()).collect();
    for code in [
        LintCode::BytecodeTruncated,
        LintCode::BytecodeBadOpcode,
        LintCode::BytecodeBadArity,
        LintCode::BytecodeOperandRange,
        LintCode::BytecodeDstRange,
        LintCode::BytecodeScratchOrder,
        LintCode::BytecodeOperandLevel,
        LintCode::BytecodeBatchLevel,
        LintCode::BytecodeChainMismatch,
        LintCode::XTaintMismatch,
    ] {
        assert!(fired.contains(&code), "no mutation fires {code}");
    }
}
