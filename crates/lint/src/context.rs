//! What gets linted: a netlist plus the DFT metadata the FLH-family checks
//! need.

use std::cell::OnceCell;
use std::sync::Arc;

use flh_core::{DftNetlist, DftStyle};
use flh_netlist::{CellId, CompiledCircuit, Netlist, Program};

/// One lint target: a netlist, optionally with an applied DFT style and the
/// transform's bookkeeping (gated gates, keepers, holding cells, scan-chain
/// order).
///
/// Bare netlists (straight from a `.bench` file or the generator) get the
/// structural checks only; targets built with [`LintTarget::from_dft`] also
/// get the scan-chain, hold-safety and FLH-family checks.
#[derive(Clone, Debug)]
pub struct LintTarget {
    /// Report label (design name, profile name or file path).
    pub name: String,
    /// The circuit under scrutiny.
    pub netlist: Netlist,
    /// Applied DFT style, if any.
    pub style: Option<DftStyle>,
    /// FLH only: the supply-gated first-level gates.
    pub gated: Vec<CellId>,
    /// FLH only: the gates carrying a keeper latch on their output.
    pub keepers: Vec<CellId>,
    /// Enhanced scan / MUX only: the inserted holding cells.
    pub hold_cells: Vec<CellId>,
    /// Scan-chain order (scan-in side first), when the target is scanned.
    pub scan_chain: Option<Vec<CellId>>,
    /// Lazily compiled execution snapshot shared by the bytecode passes —
    /// one compile + lower per target no matter how many passes ask.
    /// `Some(None)` records a failed compile (e.g. a combinational cycle),
    /// so broken targets are compiled at most once too.
    compiled: OnceCell<Option<(Arc<CompiledCircuit>, Arc<Program>)>>,
}

impl LintTarget {
    /// A bare netlist target (structural checks only).
    pub fn bare(netlist: Netlist) -> Self {
        LintTarget {
            name: netlist.name().to_string(),
            netlist,
            style: None,
            gated: Vec::new(),
            keepers: Vec::new(),
            hold_cells: Vec::new(),
            scan_chain: None,
            compiled: OnceCell::new(),
        }
    }

    /// A transformed target. The scan chain is the repo-wide convention
    /// (`flh_sim::ScanChain::from_netlist`): flip-flops in declaration
    /// order, scan-in side first.
    pub fn from_dft(dft: DftNetlist) -> Self {
        let DftNetlist {
            netlist,
            style,
            gated,
            keepers,
            hold_cells,
        } = dft;
        let scan_chain = Some(netlist.flip_flops().to_vec());
        LintTarget {
            name: netlist.name().to_string(),
            netlist,
            style: Some(style),
            gated,
            keepers,
            hold_cells,
            scan_chain,
            compiled: OnceCell::new(),
        }
    }

    /// Overrides the report label (e.g. with a file path).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Seeds the compile cache with an externally built — and possibly
    /// deliberately corrupted — program. This is the negative-test entry
    /// point for the bytecode passes: `lint_target` on a seeded target runs
    /// the verifier against the injected program instead of recompiling.
    #[must_use]
    pub fn with_program(self, compiled: Arc<CompiledCircuit>, program: Arc<Program>) -> Self {
        let _ = self.compiled.set(Some((compiled, program)));
        self
    }

    /// The compiled circuit + lowered program, compiling on first use.
    /// Returns `None` when the netlist cannot be compiled (the structural
    /// passes have already reported why).
    pub(crate) fn compiled(&self) -> Option<&(Arc<CompiledCircuit>, Arc<Program>)> {
        self.compiled
            .get_or_init(|| {
                CompiledCircuit::compile_shared(&self.netlist)
                    .ok()
                    .map(|c| {
                        let p = Program::lower_shared(&c);
                        (c, p)
                    })
            })
            .as_ref()
    }

    /// Name of a cell, tolerating out-of-range ids from corrupted inputs.
    pub(crate) fn cell_name(&self, id: CellId) -> String {
        if id.index() < self.netlist.cell_count() {
            self.netlist.cell(id).name().to_string()
        } else {
            format!("<{id}>")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_core::apply_style;
    use flh_netlist::CellKind;

    fn toy() -> Netlist {
        let mut n = Netlist::new("toy");
        let a = n.add_input("a");
        let ff = n.add_cell("r", CellKind::Dff, vec![a]);
        let g = n.add_cell("g", CellKind::Inv, vec![ff]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn bare_target_has_no_dft_metadata() {
        let t = LintTarget::bare(toy());
        assert_eq!(t.name, "toy");
        assert!(t.style.is_none());
        assert!(t.scan_chain.is_none());
        assert!(t.gated.is_empty());
    }

    #[test]
    fn dft_target_carries_the_transform_bookkeeping() {
        let dft = apply_style(&toy(), DftStyle::Flh).unwrap();
        let gated = dft.gated.clone();
        let t = LintTarget::from_dft(dft);
        assert_eq!(t.style, Some(DftStyle::Flh));
        assert_eq!(t.gated, gated);
        assert_eq!(t.keepers, gated);
        let chain = t.scan_chain.as_ref().unwrap();
        assert_eq!(chain, t.netlist.flip_flops());
    }

    #[test]
    fn cell_name_tolerates_out_of_range_ids() {
        let t = LintTarget::bare(toy());
        assert_eq!(t.cell_name(CellId::from_index(0)), "a");
        assert_eq!(t.cell_name(CellId::from_index(999)), "<c999>");
    }
}
