//! `flh_lint` — static verification of `.bench` netlists and the generated
//! ISCAS89 profile grid.
//!
//! ```text
//! flh_lint [OPTIONS] [FILE.bench ...]
//!
//!   --profiles all | NAME[,NAME...]   lint generated ISCAS89 profiles
//!   --styles   all | LIST             DFT styles to apply (plain, enhanced,
//!                                     mux, flh); default for profiles:
//!                                     enhanced,mux,flh; files lint bare
//!                                     unless styles are given explicitly
//!   --json PATH | -                   write the JSON summary (- = stdout)
//!   --metrics-json PATH | -           write the flh-obs metrics report
//!                                     (per-pass finding counters plus a
//!                                     separate nondeterministic timing
//!                                     section)
//!   --quiet                           per-target summary lines only
//!   --help                            this text
//! ```
//!
//! Setting `FLH_TRACE=<path>` additionally writes a Chrome trace-event
//! file of the per-pass spans.
//!
//! Exit codes: 0 clean, 1 at least one error-severity diagnostic, 2 usage
//! error.

use std::process::ExitCode;

use flh_core::{apply_style, DftStyle};
use flh_exec::ThreadPool;
use flh_lint::{
    lint_dft, lint_netlist, lint_profile_grid, reports_to_json, target_error_report, LintReport,
};
use flh_netlist::bench_io::read_bench_file;
use flh_netlist::{iscas89_profile, iscas89_profiles, CircuitProfile};

const USAGE: &str = "usage: flh_lint [--profiles all|LIST] [--styles all|LIST] \
[--json PATH|-] [--metrics-json PATH|-] [--quiet] [FILE.bench ...]";

struct Options {
    files: Vec<String>,
    profiles: Vec<CircuitProfile>,
    styles: Option<Vec<DftStyle>>,
    json: Option<String>,
    metrics_json: Option<String>,
    quiet: bool,
}

fn parse_style(name: &str) -> Result<DftStyle, String> {
    match name {
        "plain" | "plain-scan" | "scan" => Ok(DftStyle::PlainScan),
        "enhanced" | "enhanced-scan" | "es" => Ok(DftStyle::EnhancedScan),
        "mux" | "mux-hold" => Ok(DftStyle::MuxHold),
        "flh" => Ok(DftStyle::Flh),
        other => Err(format!(
            "unknown style {other:?} (expected plain, enhanced, mux or flh)"
        )),
    }
}

fn parse_styles(list: &str) -> Result<Vec<DftStyle>, String> {
    if list == "all" {
        return Ok(vec![
            DftStyle::PlainScan,
            DftStyle::EnhancedScan,
            DftStyle::MuxHold,
            DftStyle::Flh,
        ]);
    }
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(parse_style)
        .collect()
}

fn parse_profiles(list: &str) -> Result<Vec<CircuitProfile>, String> {
    if list == "all" {
        return Ok(iscas89_profiles());
    }
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|name| {
            iscas89_profile(name).ok_or_else(|| format!("unknown ISCAS89 profile {name:?}"))
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        files: Vec::new(),
        profiles: Vec::new(),
        styles: None,
        json: None,
        metrics_json: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} expects a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--profiles" => opts.profiles.extend(parse_profiles(&value(&mut it)?)?),
            "--styles" => {
                let styles = parse_styles(&value(&mut it)?)?;
                opts.styles.get_or_insert_with(Vec::new).extend(styles);
            }
            "--json" => opts.json = Some(value(&mut it)?),
            "--metrics-json" => opts.metrics_json = Some(value(&mut it)?),
            "--quiet" | "-q" => opts.quiet = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && opts.profiles.is_empty() {
        return Err("no targets: pass .bench files and/or --profiles".to_string());
    }
    Ok(Some(opts))
}

/// Lints one `.bench` file: bare when no styles are requested, once per
/// style otherwise. Parse failures become `FLH000` reports.
fn lint_file(path: &str, styles: Option<&[DftStyle]>) -> Vec<LintReport> {
    let netlist = match read_bench_file(path) {
        Ok(n) => n,
        Err(e) => {
            let style = styles.and_then(|s| s.first().copied());
            return vec![target_error_report(path, style, e)];
        }
    };
    match styles {
        None => vec![lint_netlist(netlist).retargeted(path)],
        Some(styles) => styles
            .iter()
            .map(|&style| match apply_style(&netlist, style) {
                Ok(dft) => lint_dft(dft).retargeted(path),
                Err(e) => target_error_report(path, Some(style), e),
            })
            .collect(),
    }
}

trait Retarget {
    fn retargeted(self, name: &str) -> Self;
}

impl Retarget for LintReport {
    fn retargeted(mut self, name: &str) -> Self {
        self.target = name.to_string();
        self
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let trace = flh_obs::trace_path_from_env();
    if opts.metrics_json.is_some() || trace.is_some() {
        flh_obs::install(trace.is_some());
    }
    let mut reports: Vec<LintReport> = Vec::new();
    for file in &opts.files {
        reports.extend(lint_file(file, opts.styles.as_deref()));
    }
    if !opts.profiles.is_empty() {
        let styles = opts
            .styles
            .clone()
            .unwrap_or_else(|| vec![DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh]);
        let pool = ThreadPool::from_env();
        reports.extend(lint_profile_grid(&pool, &opts.profiles, &styles));
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for report in &reports {
        errors += report.error_count();
        warnings += report.warning_count();
        if opts.quiet {
            println!(
                "{}: {} error(s), {} warning(s)",
                report.label(),
                report.error_count(),
                report.warning_count()
            );
        } else {
            print!("{}", report.render_text());
        }
    }
    println!(
        "flh_lint: {} target(s), {errors} error(s), {warnings} warning(s)",
        reports.len()
    );

    if let Some(dest) = &opts.json {
        let json = reports_to_json(&reports);
        if dest == "-" {
            print!("{json}");
        } else {
            std::fs::write(dest, &json).map_err(|e| format!("{dest}: {e}"))?;
        }
    }
    if let Some(dest) = &opts.metrics_json {
        let metrics = flh_obs::full_json(&flh_obs::snapshot());
        if dest == "-" {
            print!("{metrics}");
        } else {
            std::fs::write(dest, &metrics).map_err(|e| format!("{dest}: {e}"))?;
        }
    }
    if let Some(path) = &trace {
        flh_obs::write_trace(path).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(errors == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(opts)) => match run(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("flh_lint: {message}");
                ExitCode::from(2)
            }
        },
        Err(message) => {
            eprintln!("flh_lint: {message}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
