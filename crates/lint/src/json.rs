//! Machine-readable summary for CI: a hand-rolled JSON emitter (the
//! workspace is dependency-free by design, so no serde).

use std::collections::BTreeSet;

use crate::report::LintReport;

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: impl IntoIterator<Item = String>) -> String {
    let quoted: Vec<String> = items
        .into_iter()
        .map(|s| format!("\"{}\"", escape(&s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Renders the whole run as a JSON document:
///
/// ```json
/// {
///   "targets": [
///     {"target": "s298", "style": "FLH", "errors": 0, "warnings": 1,
///      "skipped_passes": [],
///      "diagnostics": [{"code": "FLH005", "severity": "warning",
///                       "cells": ["g12"], "message": "...", "hint": "..."}]}
///   ],
///   "total_errors": 0, "total_warnings": 1, "codes": ["FLH005"]
/// }
/// ```
///
/// Key order and formatting are fixed, so CI can diff summaries byte for
/// byte across runs.
pub fn reports_to_json(reports: &[LintReport]) -> String {
    let mut targets = Vec::with_capacity(reports.len());
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut codes: BTreeSet<&'static str> = BTreeSet::new();
    for report in reports {
        total_errors += report.error_count();
        total_warnings += report.warning_count();
        let mut diagnostics = Vec::with_capacity(report.diagnostics.len());
        for d in &report.diagnostics {
            codes.insert(d.code.code());
            diagnostics.push(format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"cells\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
                d.code,
                d.severity,
                string_array(d.cells.iter().cloned()),
                escape(&d.message),
                escape(&d.hint)
            ));
        }
        let style = match &report.style {
            Some(s) => format!("\"{}\"", escape(s)),
            None => "null".to_string(),
        };
        targets.push(format!(
            "{{\"target\":\"{}\",\"style\":{style},\"errors\":{},\"warnings\":{},\"skipped_passes\":{},\"diagnostics\":[{}]}}",
            escape(&report.target),
            report.error_count(),
            report.warning_count(),
            string_array(report.skipped_passes.iter().map(|s| s.to_string())),
            diagnostics.join(",")
        ));
    }
    format!(
        "{{\"targets\":[{}],\"total_errors\":{total_errors},\"total_warnings\":{total_warnings},\"codes\":{}}}\n",
        targets.join(","),
        string_array(codes.into_iter().map(str::to_string))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Diagnostic, LintCode};

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_structure_is_stable() {
        let mut r = LintReport::new("s298", Some("FLH".into()));
        r.push(
            Diagnostic::new(LintCode::FlhCoverage, "hole \"here\"")
                .with_cell("g1")
                .with_hint("gate it"),
        );
        r.skipped_passes.push("cycles");
        let json = reports_to_json(&[r]);
        assert!(json.contains("\"target\":\"s298\""));
        assert!(json.contains("\"style\":\"FLH\""));
        assert!(json.contains("\"code\":\"FLH010\""));
        assert!(json.contains("\"cells\":[\"g1\"]"));
        assert!(json.contains("hole \\\"here\\\""));
        assert!(json.contains("\"skipped_passes\":[\"cycles\"]"));
        assert!(json.contains("\"total_errors\":1"));
        assert!(json.contains("\"codes\":[\"FLH010\"]"));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn bare_style_is_null_and_empty_run_is_valid() {
        let r = LintReport::new("t", None);
        let json = reports_to_json(&[r]);
        assert!(json.contains("\"style\":null"));
        assert!(reports_to_json(&[]).contains("\"targets\":[]"));
    }
}
