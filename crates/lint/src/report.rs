//! The diagnostics vocabulary: stable codes, severities, diagnostics and
//! per-target reports.

use std::collections::BTreeSet;
use std::fmt;

/// How serious a diagnostic is.
///
/// Only [`Severity::Error`] diagnostics gate CI; warnings flag legal but
/// wasteful or suspicious structure, infos are advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note.
    Info,
    /// Legal but suspicious or wasteful structure.
    Warning,
    /// A violated invariant: simulation or the FLH transform would be
    /// unsound on this netlist.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes (`FLH0xx`).
///
/// Codes are append-only: a code's meaning never changes once shipped, so
/// CI allowlists and scripts can match on them. The FLH-specific family
/// (`FLH010`–`FLH013`) checks the structural invariants Section 3 of the
/// paper requires for the First Level Hold transform to be sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `FLH000` — the target could not be built at all (file read, `.bench`
    /// parse, generator or transform failure).
    TargetError,
    /// `FLH001` — combinational cycle.
    CombinationalCycle,
    /// `FLH002` — fanin reference pointing outside the netlist (a floating
    /// / undriven net).
    DanglingFanin,
    /// `FLH003` — fanin count does not match the cell kind's arity.
    ArityMismatch,
    /// `FLH004` — two cells drive the same net name (multi-driver).
    MultiDriver,
    /// `FLH005` — gate (or primary input) whose output reaches no primary
    /// output and no flip-flop D pin: a dead cone.
    UnreachableGate,
    /// `FLH006` — a primary-output marker is used as a driver.
    OutputHasFanout,
    /// `FLH007` — boundary/flip-flop registry inconsistency (e.g. a
    /// dangling primary output not in the port list).
    PortRegistry,
    /// `FLH008` — combinational logic sees the shifting scan state during
    /// the V2 load: the V1 hold state is not X-safe.
    HoldLeak,
    /// `FLH009` — scan-chain connectivity/order integrity violation.
    ScanChain,
    /// `FLH010` — a unique first-level fanout gate of a scan flip-flop is
    /// not supply-gated (FLH coverage hole).
    FlhCoverage,
    /// `FLH011` — a supply-gated output carries no keeper latch.
    KeeperMissing,
    /// `FLH012` — supply gating applied to a cell that is not a
    /// first-level gate (or not a gate at all).
    IllegalGating,
    /// `FLH013` — holding-style consistency violation (wrong or missing
    /// holding cells for the declared style).
    StyleConsistency,
    /// `FLH014` — generic wide gates survive where only library cells are
    /// expected (run the technology mapper).
    UnmappedGeneric,
    /// `FLH015` — the compiled program's code stream or batch table is
    /// structurally broken (ragged stream, bad batch tiling, instruction
    /// count mismatch).
    BytecodeTruncated,
    /// `FLH016` — an opcode byte outside the fused opcode table.
    BytecodeBadOpcode,
    /// `FLH017` — an operand count outside the opcode's legal arity range.
    BytecodeBadArity,
    /// `FLH018` — an operand slot past the end of the register file.
    BytecodeOperandRange,
    /// `FLH019` — a destination slot past the end of the register file.
    BytecodeDstRange,
    /// `FLH020` — a scratch operand read before any write in its chain.
    BytecodeScratchOrder,
    /// `FLH021` — a cell operand not strictly below its batch's level.
    BytecodeOperandLevel,
    /// `FLH022` — a batch level out of range or non-monotone, or a root
    /// destination scheduled at the wrong level.
    BytecodeBatchLevel,
    /// `FLH023` — chain-table entry inconsistent with the code stream, or
    /// the hold bit disagreeing with the destination cell's kind.
    BytecodeChainMismatch,
    /// `FLH024` — a net the ternary interpreter proves constant on every
    /// input vector (advisory: constants shrink the testable fault set).
    ConstantNet,
    /// `FLH025` — a compiled instruction whose result can never reach a
    /// primary output or flip-flop D pin (advisory dead code).
    DeadInstruction,
    /// `FLH026` — the compiled-form X-taint disagrees with the
    /// netlist-level V1-hold taint: the two hold-safety analyses must
    /// agree cell for cell.
    XTaintMismatch,
    /// `FLH027` — count of stuck-at faults proven statically untestable
    /// (advisory; the `flh-atpg` prune step skips exactly these).
    StaticUntestableStuck,
    /// `FLH028` — count of transition faults proven statically untestable
    /// under the target's application style (advisory).
    StaticUntestableTransition,
}

impl LintCode {
    /// Every code, in code order.
    pub const ALL: [LintCode; 29] = [
        LintCode::TargetError,
        LintCode::CombinationalCycle,
        LintCode::DanglingFanin,
        LintCode::ArityMismatch,
        LintCode::MultiDriver,
        LintCode::UnreachableGate,
        LintCode::OutputHasFanout,
        LintCode::PortRegistry,
        LintCode::HoldLeak,
        LintCode::ScanChain,
        LintCode::FlhCoverage,
        LintCode::KeeperMissing,
        LintCode::IllegalGating,
        LintCode::StyleConsistency,
        LintCode::UnmappedGeneric,
        LintCode::BytecodeTruncated,
        LintCode::BytecodeBadOpcode,
        LintCode::BytecodeBadArity,
        LintCode::BytecodeOperandRange,
        LintCode::BytecodeDstRange,
        LintCode::BytecodeScratchOrder,
        LintCode::BytecodeOperandLevel,
        LintCode::BytecodeBatchLevel,
        LintCode::BytecodeChainMismatch,
        LintCode::ConstantNet,
        LintCode::DeadInstruction,
        LintCode::XTaintMismatch,
        LintCode::StaticUntestableStuck,
        LintCode::StaticUntestableTransition,
    ];

    /// The stable `FLH0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::TargetError => "FLH000",
            LintCode::CombinationalCycle => "FLH001",
            LintCode::DanglingFanin => "FLH002",
            LintCode::ArityMismatch => "FLH003",
            LintCode::MultiDriver => "FLH004",
            LintCode::UnreachableGate => "FLH005",
            LintCode::OutputHasFanout => "FLH006",
            LintCode::PortRegistry => "FLH007",
            LintCode::HoldLeak => "FLH008",
            LintCode::ScanChain => "FLH009",
            LintCode::FlhCoverage => "FLH010",
            LintCode::KeeperMissing => "FLH011",
            LintCode::IllegalGating => "FLH012",
            LintCode::StyleConsistency => "FLH013",
            LintCode::UnmappedGeneric => "FLH014",
            LintCode::BytecodeTruncated => "FLH015",
            LintCode::BytecodeBadOpcode => "FLH016",
            LintCode::BytecodeBadArity => "FLH017",
            LintCode::BytecodeOperandRange => "FLH018",
            LintCode::BytecodeDstRange => "FLH019",
            LintCode::BytecodeScratchOrder => "FLH020",
            LintCode::BytecodeOperandLevel => "FLH021",
            LintCode::BytecodeBatchLevel => "FLH022",
            LintCode::BytecodeChainMismatch => "FLH023",
            LintCode::ConstantNet => "FLH024",
            LintCode::DeadInstruction => "FLH025",
            LintCode::XTaintMismatch => "FLH026",
            LintCode::StaticUntestableStuck => "FLH027",
            LintCode::StaticUntestableTransition => "FLH028",
        }
    }

    /// Short kebab-case label for the code.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::TargetError => "target-error",
            LintCode::CombinationalCycle => "combinational-cycle",
            LintCode::DanglingFanin => "dangling-fanin",
            LintCode::ArityMismatch => "arity-mismatch",
            LintCode::MultiDriver => "multi-driver",
            LintCode::UnreachableGate => "unreachable-gate",
            LintCode::OutputHasFanout => "output-has-fanout",
            LintCode::PortRegistry => "port-registry",
            LintCode::HoldLeak => "hold-leak",
            LintCode::ScanChain => "scan-chain",
            LintCode::FlhCoverage => "flh-coverage",
            LintCode::KeeperMissing => "keeper-missing",
            LintCode::IllegalGating => "illegal-gating",
            LintCode::StyleConsistency => "style-consistency",
            LintCode::UnmappedGeneric => "unmapped-generic",
            LintCode::BytecodeTruncated => "bytecode-truncated",
            LintCode::BytecodeBadOpcode => "bytecode-bad-opcode",
            LintCode::BytecodeBadArity => "bytecode-bad-arity",
            LintCode::BytecodeOperandRange => "bytecode-operand-range",
            LintCode::BytecodeDstRange => "bytecode-dst-range",
            LintCode::BytecodeScratchOrder => "bytecode-scratch-order",
            LintCode::BytecodeOperandLevel => "bytecode-operand-level",
            LintCode::BytecodeBatchLevel => "bytecode-batch-level",
            LintCode::BytecodeChainMismatch => "bytecode-chain-mismatch",
            LintCode::ConstantNet => "constant-net",
            LintCode::DeadInstruction => "dead-instruction",
            LintCode::XTaintMismatch => "x-taint-mismatch",
            LintCode::StaticUntestableStuck => "static-untestable-stuck",
            LintCode::StaticUntestableTransition => "static-untestable-transition",
        }
    }

    /// The severity diagnostics of this code default to.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::UnreachableGate | LintCode::UnmappedGeneric => Severity::Warning,
            LintCode::ConstantNet
            | LintCode::DeadInstruction
            | LintCode::StaticUntestableStuck
            | LintCode::StaticUntestableTransition => Severity::Info,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a code, a severity, the offending cells, a message and a
/// fix hint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: LintCode,
    /// Severity (defaults to [`LintCode::default_severity`]).
    pub severity: Severity,
    /// Offending cell names (possibly empty for whole-netlist findings).
    pub cells: Vec<String>,
    /// Human-readable statement of the violation.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity, no cells, no hint.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            cells: Vec::new(),
            message: message.into(),
            hint: String::new(),
        }
    }

    /// Attaches offending cell names.
    #[must_use]
    pub fn with_cells(mut self, cells: Vec<String>) -> Self {
        self.cells = cells;
        self
    }

    /// Attaches one offending cell name.
    #[must_use]
    pub fn with_cell(mut self, cell: impl Into<String>) -> Self {
        self.cells.push(cell.into());
        self
    }

    /// Attaches a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = hint.into();
        self
    }

    /// Overrides the severity.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// One-line rendering: `FLH010 error [g1, g2]: message (hint: ...)`.
    pub fn render(&self) -> String {
        let mut out = format!("{} {}", self.code, self.severity);
        if !self.cells.is_empty() {
            const SHOWN: usize = 8;
            let shown: Vec<&str> = self.cells.iter().take(SHOWN).map(String::as_str).collect();
            let more = self.cells.len().saturating_sub(SHOWN);
            out.push_str(&format!(" [{}", shown.join(", ")));
            if more > 0 {
                out.push_str(&format!(", +{more} more"));
            }
            out.push(']');
        }
        out.push_str(&format!(": {}", self.message));
        if !self.hint.is_empty() {
            out.push_str(&format!(" (hint: {})", self.hint));
        }
        out
    }
}

/// All diagnostics produced for one lint target (a netlist, optionally
/// with a DFT style applied).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Target name (design name, profile name or file path).
    pub target: String,
    /// Applied DFT style label, if any.
    pub style: Option<String>,
    /// Findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Passes skipped because an earlier pass found the graph too broken
    /// to walk (dangling fanin references).
    pub skipped_passes: Vec<&'static str>,
}

impl LintReport {
    /// An empty report for a target.
    pub fn new(target: impl Into<String>, style: Option<String>) -> Self {
        LintReport {
            target: target.into(),
            style,
            diagnostics: Vec::new(),
            skipped_passes: Vec::new(),
        }
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The distinct codes that fired, in code order.
    pub fn codes(&self) -> BTreeSet<LintCode> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// True when the given code fired at least once.
    pub fn fired(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Display label: `name [style]` or just `name`.
    pub fn label(&self) -> String {
        match &self.style {
            Some(style) => format!("{} [{style}]", self.target),
            None => self.target.clone(),
        }
    }

    /// Multi-line human-readable rendering (one line per diagnostic plus a
    /// summary line).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}: {} error(s), {} warning(s)\n",
            self.label(),
            self.error_count(),
            self.warning_count()
        );
        for d in &self.diagnostics {
            out.push_str(&format!("  {}\n", d.render()));
        }
        if !self.skipped_passes.is_empty() {
            out.push_str(&format!(
                "  note: skipped passes on unsound graph: {}\n",
                self.skipped_passes.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: BTreeSet<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), LintCode::ALL.len());
        assert!(codes.contains("FLH000"));
        assert!(codes.contains("FLH014"));
        assert!(codes.contains("FLH028"));
        for c in LintCode::ALL {
            assert!(c.code().starts_with("FLH"), "{c:?}");
            assert_eq!(c.code().len(), 6);
        }
        // The acceptance bar: at least ten distinct codes exist.
        assert!(LintCode::ALL.len() >= 10);
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn diagnostic_render_caps_cell_list() {
        let d = Diagnostic::new(LintCode::UnreachableGate, "dead cones")
            .with_cells((0..12).map(|i| format!("g{i}")).collect())
            .with_hint("remove them");
        let line = d.render();
        assert!(line.starts_with("FLH005 warning"));
        assert!(line.contains("+4 more"));
        assert!(line.contains("hint: remove them"));
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = LintReport::new("t", Some("FLH".into()));
        r.push(Diagnostic::new(LintCode::FlhCoverage, "hole").with_cell("g1"));
        r.push(Diagnostic::new(LintCode::UnreachableGate, "dead"));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(r.fired(LintCode::FlhCoverage));
        assert!(!r.fired(LintCode::HoldLeak));
        assert_eq!(r.label(), "t [FLH]");
        let text = r.render_text();
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(text.contains("FLH010"));
    }
}
