//! Driving the passes: single targets, netlists, DFT netlists, generated
//! profiles and the pooled profile × style grid.

use flh_core::{apply_style, DftNetlist, DftStyle};
use flh_exec::ThreadPool;
use flh_netlist::{generate_circuit, CircuitProfile, Netlist};

use crate::context::LintTarget;
use crate::passes::PASSES;
use crate::report::{Diagnostic, LintCode, LintReport};

/// Runs every registered pass over one target.
///
/// Graph-walking passes are skipped (and recorded in
/// [`LintReport::skipped_passes`]) once the `structure` pass has reported
/// dangling fanin references or arity violations, so a badly corrupted
/// netlist yields diagnostics instead of a panic.
pub fn lint_target(target: &LintTarget) -> LintReport {
    let mut report = LintReport::new(
        target.name.clone(),
        target.style.map(|s| s.label().to_string()),
    );
    for pass in PASSES {
        let unsound =
            report.fired(LintCode::DanglingFanin) || report.fired(LintCode::ArityMismatch);
        if pass.needs_sound_graph && unsound {
            report.skipped_passes.push(pass.name);
            continue;
        }
        let before = report.diagnostics.len();
        {
            // Per-pass wall clock: nondeterministic section of the report.
            let _span = flh_obs::span(pass.name);
            (pass.run)(target, &mut report);
        }
        if flh_obs::enabled() {
            // Finding counts depend only on the target: deterministic.
            // Zero counts still register the key so the schema is stable.
            let found = (report.diagnostics.len() - before) as u64;
            flh_obs::add(flh_obs::Counter::LintFindings, found);
            flh_obs::named_add(&format!("lint.pass.{}.findings", pass.name), found);
        }
    }
    report
}

/// Lints a bare netlist (structural checks only).
pub fn lint_netlist(netlist: Netlist) -> LintReport {
    lint_target(&LintTarget::bare(netlist))
}

/// Lints a transformed netlist with the full FLH-family check set.
pub fn lint_dft(dft: DftNetlist) -> LintReport {
    lint_target(&LintTarget::from_dft(dft))
}

/// A report whose only content is a `FLH000` target-construction failure.
pub fn target_error_report(
    name: impl Into<String>,
    style: Option<DftStyle>,
    error: impl std::fmt::Display,
) -> LintReport {
    let mut report = LintReport::new(name, style.map(|s| s.label().to_string()));
    report.push(
        Diagnostic::new(
            LintCode::TargetError,
            format!("target could not be built: {error}"),
        )
        .with_hint("fix the input file / generator configuration and re-run"),
    );
    report
}

/// Generates a synthetic ISCAS89 profile, applies a style and lints it.
/// Construction failures become `FLH000` diagnostics, never panics.
pub fn lint_profile(profile: &CircuitProfile, style: DftStyle) -> LintReport {
    let netlist = match generate_circuit(&profile.generator_config()) {
        Ok(n) => n,
        Err(e) => return target_error_report(profile.name, Some(style), e),
    };
    match apply_style(&netlist, style) {
        Ok(dft) => lint_dft(dft),
        Err(e) => target_error_report(profile.name, Some(style), e),
    }
}

/// Lints the full profile × style grid on a [`ThreadPool`].
///
/// Reports come back in profile-major order (`profiles[0]` under every
/// style, then `profiles[1]`, …) regardless of pool width, so CI output is
/// byte-identical at any `FLH_THREADS` setting.
pub fn lint_profile_grid(
    pool: &ThreadPool,
    profiles: &[CircuitProfile],
    styles: &[DftStyle],
) -> Vec<LintReport> {
    if styles.is_empty() {
        return Vec::new();
    }
    pool.run(profiles.len() * styles.len(), |i| {
        lint_profile(&profiles[i / styles.len()], styles[i % styles.len()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::{iscas89_profile, iscas89_profiles, CellKind};

    #[test]
    fn clean_transformed_circuit_lints_clean() {
        let profile = iscas89_profile("s298").unwrap();
        for style in [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh] {
            let report = lint_profile(&profile, style);
            assert_eq!(
                report.error_count(),
                0,
                "{}: {}",
                report.label(),
                report.render_text()
            );
            assert!(report.skipped_passes.is_empty());
        }
    }

    #[test]
    fn bare_netlist_skips_dft_passes_silently() {
        let mut n = Netlist::new("bare");
        let a = n.add_input("a");
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        n.add_output("y", g);
        let report = lint_netlist(n);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.style, None);
    }

    #[test]
    fn target_error_reports_flh000() {
        let report = target_error_report("broken", Some(DftStyle::Flh), "boom");
        assert!(report.fired(LintCode::TargetError));
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics[0].message.contains("boom"));
    }

    #[test]
    fn grid_order_is_profile_major_and_pool_invariant() {
        let profiles: Vec<CircuitProfile> = iscas89_profiles().into_iter().take(2).collect();
        let styles = [DftStyle::EnhancedScan, DftStyle::Flh];
        let serial = lint_profile_grid(&ThreadPool::new(1), &profiles, &styles);
        let pooled = lint_profile_grid(&ThreadPool::new(4), &profiles, &styles);
        assert_eq!(serial.len(), 4);
        assert_eq!(serial, pooled, "grid must not depend on pool width");
        assert_eq!(serial[0].target, profiles[0].name);
        assert_eq!(serial[1].target, profiles[0].name);
        assert_eq!(serial[2].target, profiles[1].name);
        assert_eq!(serial[0].style.as_deref(), Some("enhanced scan"));
        assert_eq!(serial[1].style.as_deref(), Some("FLH"));
    }
}
