//! The check passes and their registry.
//!
//! Passes run in [`PASSES`] order. The `structure` pass acts as a gate:
//! when it reports `FLH002` (dangling fanin) or `FLH003` (arity mismatch)
//! the graph cannot be walked safely — every pass marked
//! [`Pass::needs_sound_graph`] is then skipped and recorded in
//! [`crate::LintReport::skipped_passes`] instead of chasing out-of-range
//! references.

// det-ok: import only; every use site justifies its own ordering story.
use std::collections::HashMap;

use flh_atpg::{enumerate_stuck_faults, enumerate_transition_faults, StaticFilter, TestView};
use flh_core::DftStyle;
use flh_netlist::analysis::{
    combinational_order, first_level_gates, first_level_gates_of, unobservable_cells, FanoutMap,
};
use flh_netlist::static_analysis::{self, VerifyKind, VerifyReport};
use flh_netlist::{CellId, CellKind, NetlistError};

use crate::context::LintTarget;
use crate::report::{Diagnostic, LintCode, LintReport};

/// One registered check pass.
pub struct Pass {
    /// Stable pass name (also used in `skipped_passes`).
    pub name: &'static str,
    /// One-line description for `--help`-style listings.
    pub description: &'static str,
    /// True when the pass indexes fanin references and must not run on a
    /// graph with dangling references or arity violations.
    pub needs_sound_graph: bool,
    /// The check itself.
    pub run: fn(&LintTarget, &mut LintReport),
}

/// All passes, in execution order.
pub const PASSES: &[Pass] = &[
    Pass {
        name: "structure",
        description: "fanin ranges, arities, multi-drivers, output fanout (FLH002/003/004/006)",
        needs_sound_graph: false,
        run: pass_structure,
    },
    Pass {
        name: "ports",
        description: "boundary and flip-flop registry consistency (FLH007)",
        needs_sound_graph: false,
        run: pass_ports,
    },
    Pass {
        name: "generic",
        description: "unmapped generic wide gates (FLH014)",
        needs_sound_graph: false,
        run: pass_generic,
    },
    Pass {
        name: "cycles",
        description: "combinational acyclicity (FLH001)",
        needs_sound_graph: true,
        run: pass_cycles,
    },
    Pass {
        name: "dead-cones",
        description: "gates and inputs reaching no observation point (FLH005)",
        needs_sound_graph: false,
        run: pass_dead_cones,
    },
    Pass {
        name: "scan-chain",
        description: "scan-chain connectivity and order integrity (FLH009)",
        needs_sound_graph: false,
        run: pass_scan_chain,
    },
    Pass {
        name: "hold-leak",
        description: "X-safety of the V1 hold state during the V2 load (FLH008)",
        needs_sound_graph: true,
        run: pass_hold_leak,
    },
    Pass {
        name: "flh-coverage",
        description: "every first-level gate of the scan flip-flops is supply-gated (FLH010)",
        needs_sound_graph: true,
        run: pass_flh_coverage,
    },
    Pass {
        name: "flh-gating",
        description: "gated cells are legal first-level gates and keep their keepers (FLH011/012)",
        needs_sound_graph: true,
        run: pass_flh_gating,
    },
    Pass {
        name: "style",
        description: "holding cells match the declared style (FLH013)",
        needs_sound_graph: true,
        run: pass_style,
    },
    Pass {
        name: "bytecode-verifier",
        description: "compiled program satisfies the emission contract (FLH015-023)",
        needs_sound_graph: true,
        run: pass_bytecode_verifier,
    },
    Pass {
        name: "bytecode-ternary",
        description: "ternary constant propagation and dead compiled code (FLH024/025)",
        needs_sound_graph: true,
        run: pass_bytecode_ternary,
    },
    Pass {
        name: "bytecode-xtaint",
        description: "compiled-form X-taint agrees with the netlist hold-leak walk (FLH026)",
        needs_sound_graph: true,
        run: pass_bytecode_xtaint,
    },
    Pass {
        name: "testability",
        description: "statically untestable stuck-at / transition fault census (FLH027/028)",
        needs_sound_graph: true,
        run: pass_testability,
    },
];

/// FLH002/FLH003/FLH004/FLH006: per-cell structural soundness. This pass
/// gates the graph-walking passes.
fn pass_structure(t: &LintTarget, r: &mut LintReport) {
    let n = t.netlist.cell_count();
    for (_, cell) in t.netlist.iter() {
        let kind = cell.kind();
        if cell.fanin().len() != kind.arity() {
            r.push(
                Diagnostic::new(
                    LintCode::ArityMismatch,
                    format!(
                        "{} is a {kind} with {} fanin pins; the kind expects {}",
                        cell.name(),
                        cell.fanin().len(),
                        kind.arity()
                    ),
                )
                .with_cell(cell.name())
                .with_hint("rebuild the cell with the arity its kind requires"),
            );
        }
        for &f in cell.fanin() {
            if f.index() >= n {
                r.push(
                    Diagnostic::new(
                        LintCode::DanglingFanin,
                        format!(
                            "{} reads {f}, which does not exist ({n} cells): a floating net",
                            cell.name()
                        ),
                    )
                    .with_cell(cell.name())
                    .with_hint("every fanin pin must reference a driver inside the netlist"),
                );
            } else if t.netlist.cell(f).kind() == CellKind::Output {
                r.push(
                    Diagnostic::new(
                        LintCode::OutputHasFanout,
                        format!(
                            "{} reads primary-output marker {}",
                            cell.name(),
                            t.netlist.cell(f).name()
                        ),
                    )
                    .with_cell(cell.name())
                    .with_hint("read the output's driver instead; PO markers are pure sinks"),
                );
            }
        }
    }
    // Multi-driver: in the single-output-per-cell representation two cells
    // of the same name are two drivers of one net.
    // det-ok: insert-probe only; diagnostics follow netlist iteration order.
    let mut seen: HashMap<&str, ()> = HashMap::with_capacity(n);
    for (_, cell) in t.netlist.iter() {
        if seen.insert(cell.name(), ()).is_some() {
            r.push(
                Diagnostic::new(
                    LintCode::MultiDriver,
                    format!("net {:?} has more than one driver", cell.name()),
                )
                .with_cell(cell.name())
                .with_hint("rename one of the drivers or merge them"),
            );
        }
    }
}

/// FLH007: every boundary / flip-flop cell is registered in the matching
/// port list, and every registry entry points at a cell of the right kind.
fn pass_ports(t: &LintTarget, r: &mut LintReport) {
    let n = t.netlist.cell_count();
    let mut flag = vec![0u8; n];
    const IN: u8 = 1;
    const OUT: u8 = 2;
    const FF: u8 = 4;
    let registries: [(&[CellId], u8, &str); 3] = [
        (t.netlist.inputs(), IN, "primary-input"),
        (t.netlist.outputs(), OUT, "primary-output"),
        (t.netlist.flip_flops(), FF, "flip-flop"),
    ];
    for (list, bit, label) in registries {
        for &id in list {
            if id.index() >= n {
                r.push(
                    Diagnostic::new(
                        LintCode::PortRegistry,
                        format!("{label} registry references nonexistent cell {id}"),
                    )
                    .with_hint("registries must only hold live cell ids"),
                );
            } else {
                flag[id.index()] |= bit;
            }
        }
    }
    for (id, cell) in t.netlist.iter() {
        let expected = match cell.kind() {
            CellKind::Input => IN,
            CellKind::Output => OUT,
            k if k.is_flip_flop() => FF,
            _ => 0,
        };
        let got = flag[id.index()];
        if got == expected {
            continue;
        }
        let describe = |bits: u8| -> &'static str {
            match bits {
                IN => "the primary-input registry",
                OUT => "the primary-output registry",
                FF => "the flip-flop registry",
                0 => "no registry",
                _ => "multiple registries",
            }
        };
        r.push(
            Diagnostic::new(
                LintCode::PortRegistry,
                format!(
                    "{} is a {} but sits in {} instead of {}",
                    cell.name(),
                    cell.kind(),
                    describe(got),
                    describe(expected)
                ),
            )
            .with_cell(cell.name())
            .with_hint("build boundary cells with add_input/add_output so registries stay in sync"),
        );
    }
}

/// FLH014 (warning): generic wide gates that must be technology-mapped
/// before the physical crates can cost the circuit.
fn pass_generic(t: &LintTarget, r: &mut LintReport) {
    let generic: Vec<String> = t
        .netlist
        .iter()
        .filter(|(_, c)| c.kind().is_generic())
        .map(|(_, c)| c.name().to_string())
        .collect();
    if !generic.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::UnmappedGeneric,
                format!(
                    "{} generic wide gate(s) survive; overhead figures would be wrong",
                    generic.len()
                ),
            )
            .with_cells(generic)
            .with_hint("run the technology mapper (flh_netlist::mapper) before costing"),
        );
    }
}

/// FLH001: combinational cycles.
fn pass_cycles(t: &LintTarget, r: &mut LintReport) {
    match combinational_order(&t.netlist) {
        Ok(_) => {}
        Err(NetlistError::CombinationalCycle { cell }) => {
            r.push(
                Diagnostic::new(
                    LintCode::CombinationalCycle,
                    format!("combinational cycle through {}", t.cell_name(cell)),
                )
                .with_cell(t.cell_name(cell))
                .with_hint("break the loop with a flip-flop or rewire the feedback"),
            );
        }
        Err(other) => {
            // combinational_order only reports cycles; anything else means
            // the soundness gate failed us — surface it rather than hide it.
            r.push(Diagnostic::new(
                LintCode::CombinationalCycle,
                format!("topological sort failed: {other}"),
            ));
        }
    }
}

/// FLH005 (warning): dead cones — cells whose output reaches no primary
/// output and no flip-flop D pin.
fn pass_dead_cones(t: &LintTarget, r: &mut LintReport) {
    let dead = unobservable_cells(&t.netlist);
    if !dead.is_empty() {
        let names: Vec<String> = dead.iter().map(|&id| t.cell_name(id)).collect();
        r.push(
            Diagnostic::new(
                LintCode::UnreachableGate,
                format!(
                    "{} cell(s) reach no primary output and no flip-flop: dead cones",
                    names.len()
                ),
            )
            .with_cells(names)
            .with_hint("remove the dead logic or observe it; fault tools skip these cones"),
        );
    }
}

/// FLH009: scan-chain connectivity and order integrity.
fn pass_scan_chain(t: &LintTarget, r: &mut LintReport) {
    let Some(chain) = &t.scan_chain else {
        return;
    };
    let n = t.netlist.cell_count();
    let mut in_chain = vec![false; n];
    for (pos, &id) in chain.iter().enumerate() {
        if id.index() >= n {
            r.push(
                Diagnostic::new(
                    LintCode::ScanChain,
                    format!("chain position {pos} references nonexistent cell {id}"),
                )
                .with_hint("the chain must only list live flip-flops"),
            );
            continue;
        }
        let cell = t.netlist.cell(id);
        if !cell.kind().is_flip_flop() {
            r.push(
                Diagnostic::new(
                    LintCode::ScanChain,
                    format!(
                        "chain position {pos} is {} ({}), not a flip-flop",
                        cell.name(),
                        cell.kind()
                    ),
                )
                .with_cell(cell.name())
                .with_hint("only Dff/ScanDff cells belong on the chain"),
            );
        } else if in_chain[id.index()] {
            r.push(
                Diagnostic::new(
                    LintCode::ScanChain,
                    format!("{} appears more than once in the chain", cell.name()),
                )
                .with_cell(cell.name())
                .with_hint("each flip-flop is shifted exactly once per cycle"),
            );
        }
        in_chain[id.index()] = true;
    }
    for &ff in t.netlist.flip_flops() {
        if ff.index() < n && !in_chain[ff.index()] {
            r.push(
                Diagnostic::new(
                    LintCode::ScanChain,
                    format!(
                        "flip-flop {} is missing from the scan chain",
                        t.cell_name(ff)
                    ),
                )
                .with_cell(t.cell_name(ff))
                .with_hint("an unchained flip-flop cannot be loaded with V1/V2 state"),
            );
        }
    }
    // Under any DFT style every flip-flop must have been scan-converted.
    if t.style.is_some() {
        for &ff in t.netlist.flip_flops() {
            if ff.index() < n && t.netlist.cell(ff).kind() == CellKind::Dff {
                r.push(
                    Diagnostic::new(
                        LintCode::ScanChain,
                        format!("{} is still a plain DFF under a DFT style", t.cell_name(ff)),
                    )
                    .with_cell(t.cell_name(ff))
                    .with_hint("run scan insertion (insert_scan) before applying a style"),
                );
            }
        }
    }
}

/// FLH008: X-safety of the V1 hold state. Forward taint propagation — flip-
/// flop outputs carry the *shifting* scan state while V2 is loaded; holding
/// cells and supply-gated gates freeze it out. Any combinational cell the
/// taint still reaches sees garbage during the load, so the circuit cannot
/// apply arbitrary two-pattern tests.
fn pass_hold_leak(t: &LintTarget, r: &mut LintReport) {
    let Some(style) = t.style else {
        return; // bare netlists hold nothing by construction
    };
    if style == DftStyle::PlainScan {
        return; // plain scan makes no hold promise
    }
    let Ok(order) = combinational_order(&t.netlist) else {
        return; // cycle already reported by the `cycles` pass
    };
    let n = t.netlist.cell_count();
    let mut frozen = vec![false; n];
    for &g in &t.gated {
        if g.index() < n {
            frozen[g.index()] = true;
        }
    }
    let mut tainted = vec![false; n];
    for &ff in t.netlist.flip_flops() {
        if ff.index() < n {
            tainted[ff.index()] = true;
        }
    }
    let mut leaks: Vec<String> = Vec::new();
    for &id in &order {
        let cell = t.netlist.cell(id);
        let kind = cell.kind();
        // Holding cells and supply-gated gates present the frozen V1 value
        // regardless of what their inputs do.
        if kind.is_hold_element() || frozen[id.index()] {
            continue;
        }
        if cell.fanin().iter().any(|&f| tainted[f.index()]) {
            tainted[id.index()] = true;
            if kind.is_combinational() {
                leaks.push(cell.name().to_string());
            }
        }
    }
    if !leaks.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::HoldLeak,
                format!(
                    "{} combinational cell(s) see the shifting scan state during the V2 load",
                    leaks.len()
                ),
            )
            .with_cells(leaks)
            .with_hint(
                "every flip-flop reader must be a holding cell or a supply-gated first-level gate",
            ),
        );
    }
}

/// FLH010: FLH coverage — every unique first-level gate of the scan
/// flip-flops must be supply-gated, or V1 is not held on that path.
fn pass_flh_coverage(t: &LintTarget, r: &mut LintReport) {
    let Some(style) = t.style else {
        return;
    };
    if !style.uses_supply_gating() {
        return;
    }
    let n = t.netlist.cell_count();
    let mut gated = vec![false; n];
    for &g in &t.gated {
        if g.index() < n {
            gated[g.index()] = true;
        }
    }
    let fanouts = FanoutMap::compute(&t.netlist);
    for flg in first_level_gates(&t.netlist, &fanouts) {
        if !gated[flg.index()] {
            r.push(
                Diagnostic::new(
                    LintCode::FlhCoverage,
                    format!(
                        "first-level gate {} of the scan flip-flops is not supply-gated",
                        t.cell_name(flg)
                    ),
                )
                .with_cell(t.cell_name(flg))
                .with_hint("FLH must gate every unique first-level fanout gate (paper §II-A)"),
            );
        }
    }
}

/// FLH011/FLH012: legality of the gated set and its keepers. Gating is only
/// legal on combinational first-level gates (of flip-flops or — for the
/// Section IV BIST extension — primary inputs), and every gated output
/// needs a keeper latch to hold V1.
fn pass_flh_gating(t: &LintTarget, r: &mut LintReport) {
    let supply_gating = t.style.is_some_and(DftStyle::uses_supply_gating);
    if !supply_gating && t.gated.is_empty() && t.keepers.is_empty() {
        return;
    }
    let n = t.netlist.cell_count();
    let fanouts = FanoutMap::compute(&t.netlist);
    let mut sources: Vec<CellId> = t.netlist.flip_flops().to_vec();
    sources.extend_from_slice(t.netlist.inputs());
    let legal_sites = first_level_gates_of(&t.netlist, &fanouts, &sources);
    let mut legal = vec![false; n];
    for &g in &legal_sites {
        legal[g.index()] = true;
    }
    let mut kept = vec![false; n];
    for &k in &t.keepers {
        if k.index() < n {
            kept[k.index()] = true;
        }
    }
    let mut gated = vec![false; n];
    let mut missing_keeper: Vec<String> = Vec::new();
    for &g in &t.gated {
        if g.index() >= n {
            r.push(
                Diagnostic::new(
                    LintCode::IllegalGating,
                    format!("gated set references nonexistent cell {g}"),
                )
                .with_hint("gate only live cells"),
            );
            continue;
        }
        gated[g.index()] = true;
        let cell = t.netlist.cell(g);
        if !cell.kind().is_combinational() {
            r.push(
                Diagnostic::new(
                    LintCode::IllegalGating,
                    format!(
                        "{} ({}) is supply-gated but is not a combinational gate",
                        cell.name(),
                        cell.kind()
                    ),
                )
                .with_cell(cell.name())
                .with_hint("supply gating applies to logic gates only"),
            );
        } else if !legal[g.index()] {
            r.push(
                Diagnostic::new(
                    LintCode::IllegalGating,
                    format!(
                        "{} is supply-gated but is not a first-level gate of any flip-flop or primary input",
                        cell.name()
                    ),
                )
                .with_cell(cell.name())
                .with_hint("gating deeper cells buys nothing and corrupts their evaluation"),
            );
        }
        if !kept[g.index()] {
            missing_keeper.push(cell.name().to_string());
        }
    }
    if !missing_keeper.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::KeeperMissing,
                format!(
                    "{} supply-gated output(s) carry no keeper latch; V1 would float away",
                    missing_keeper.len()
                ),
            )
            .with_cells(missing_keeper)
            .with_hint("every gated output needs a minimum-sized keeper (paper Fig. 3)"),
        );
    }
    let stray: Vec<String> = t
        .keepers
        .iter()
        .filter(|k| k.index() >= n || !gated[k.index()])
        .map(|&k| t.cell_name(k))
        .collect();
    if !stray.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::KeeperMissing,
                format!(
                    "{} keeper(s) sit on outputs that are not supply-gated",
                    stray.len()
                ),
            )
            .with_cells(stray)
            .with_hint("keep DftNetlist::keepers in sync with DftNetlist::gated"),
        );
    }
}

/// FLH013: per-style consistency — the netlist carries exactly the holding
/// cells its declared style calls for, wired the way the style wires them.
fn pass_style(t: &LintTarget, r: &mut LintReport) {
    let Some(style) = t.style else {
        return;
    };
    let n = t.netlist.cell_count();
    let expected = style.hold_cell_kind();
    for (_, cell) in t.netlist.iter() {
        let kind = cell.kind();
        if !kind.is_hold_element() {
            continue;
        }
        match expected {
            None => {
                r.push(
                    Diagnostic::new(
                        LintCode::StyleConsistency,
                        format!(
                            "{} is a {kind} but style {style} inserts no holding cells",
                            cell.name()
                        ),
                    )
                    .with_cell(cell.name())
                    .with_hint("remove the stray holding cell or declare the matching style"),
                );
            }
            Some(k) if kind != k => {
                r.push(
                    Diagnostic::new(
                        LintCode::StyleConsistency,
                        format!(
                            "{} is a {kind}; style {style} uses {k} holding cells",
                            cell.name()
                        ),
                    )
                    .with_cell(cell.name())
                    .with_hint("one style per netlist: re-run apply_style"),
                );
            }
            Some(_) => {
                // Right kind — it must sit directly on a flip-flop output.
                if let Some(&f) = cell.fanin().first() {
                    if f.index() < n && !t.netlist.cell(f).kind().is_flip_flop() {
                        r.push(
                            Diagnostic::new(
                                LintCode::StyleConsistency,
                                format!(
                                    "holding cell {} reads {} instead of a scan flip-flop",
                                    cell.name(),
                                    t.cell_name(f)
                                ),
                            )
                            .with_cell(cell.name())
                            .with_hint("holding cells splice directly onto flip-flop outputs"),
                        );
                    }
                }
            }
        }
    }
    // The transform's own registry must list real holding cells.
    for &h in &t.hold_cells {
        let ok = h.index() < n && t.netlist.cell(h).kind().is_hold_element();
        if !ok {
            r.push(
                Diagnostic::new(
                    LintCode::StyleConsistency,
                    format!(
                        "hold-cell registry entry {} is not a holding cell",
                        t.cell_name(h)
                    ),
                )
                .with_cell(t.cell_name(h))
                .with_hint("DftNetlist::hold_cells must list the spliced holding cells"),
            );
        }
    }
    if let Some(k) = expected {
        // Fig. 1(a): the holding logic sits in the stimulus path, so *every*
        // reader of a flip-flop must be its holding cell.
        let fanouts = FanoutMap::compute(&t.netlist);
        for &ff in t.netlist.flip_flops() {
            if ff.index() >= n {
                continue;
            }
            for &reader in fanouts.readers(ff) {
                if !t.netlist.cell(reader).kind().is_hold_element() {
                    r.push(
                        Diagnostic::new(
                            LintCode::StyleConsistency,
                            format!(
                                "{} reads flip-flop {} directly, bypassing the {k} holding cell",
                                t.cell_name(reader),
                                t.cell_name(ff)
                            ),
                        )
                        .with_cell(t.cell_name(reader))
                        .with_hint("redirect all flip-flop readers through the holding cell"),
                    );
                }
            }
        }
    }
    if !style.uses_supply_gating() && !t.gated.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::StyleConsistency,
                format!(
                    "style {style} does not supply-gate, yet {} cell(s) are marked gated",
                    t.gated.len()
                ),
            )
            .with_hint("only the FLH style populates DftNetlist::gated"),
        );
    }
}

/// Stable mapping from a verifier violation kind to its lint code. Public so
/// external negative tests (corrupted-program fixtures) can assert the exact
/// code without re-deriving the table.
pub fn verify_code(kind: VerifyKind) -> LintCode {
    match kind {
        VerifyKind::Truncated => LintCode::BytecodeTruncated,
        VerifyKind::BadOpcode => LintCode::BytecodeBadOpcode,
        VerifyKind::BadArity => LintCode::BytecodeBadArity,
        VerifyKind::OperandRange => LintCode::BytecodeOperandRange,
        VerifyKind::DstRange => LintCode::BytecodeDstRange,
        VerifyKind::ScratchReadBeforeWrite => LintCode::BytecodeScratchOrder,
        VerifyKind::OperandLevel => LintCode::BytecodeOperandLevel,
        VerifyKind::BatchLevel => LintCode::BytecodeBatchLevel,
        VerifyKind::ChainMismatch => LintCode::BytecodeChainMismatch,
    }
}

/// Render a verifier report as lint diagnostics. `namer` resolves a compiled
/// cell id to a display name; violations without a cell use the instruction
/// index alone.
pub fn bytecode_diagnostics(
    report: &VerifyReport,
    namer: impl Fn(u32) -> String,
) -> Vec<Diagnostic> {
    report
        .violations
        .iter()
        .map(|v| {
            let mut msg = match v.inst {
                Some(i) => format!("inst {i}: {}", v.message),
                None => v.message.clone(),
            };
            if let Some(c) = v.cell {
                msg = format!("{msg} (cell {})", namer(c));
            }
            let mut d = Diagnostic::new(verify_code(v.kind), msg)
                .with_hint("the compiled program violates the emission contract; recompile");
            if let Some(c) = v.cell {
                d = d.with_cell(namer(c));
            }
            d
        })
        .collect()
}

/// FLH015-023: machine-checked bytecode contract. Decodes every instruction
/// of the lowered program and proves the register-allocation and batching
/// invariants the superword executors rely on.
fn pass_bytecode_verifier(t: &LintTarget, r: &mut LintReport) {
    let Some((compiled, program)) = t.compiled() else {
        return; // uncompilable netlists are already reported structurally
    };
    let vr = static_analysis::verify_program(compiled, program);
    if flh_obs::enabled() {
        flh_obs::add(flh_obs::Counter::LintVerifierChecks, vr.checks);
    }
    for d in bytecode_diagnostics(&vr, |c| t.cell_name(compiled.cell_id(c))) {
        r.push(d);
    }
}

/// FLH024/FLH025: ternary abstract interpretation over the compiled form.
/// Nets proven constant under all-X inputs and instructions whose results
/// can never reach an observation point are advisory findings — they cost
/// test coverage and silicon, not correctness.
fn pass_bytecode_ternary(t: &LintTarget, r: &mut LintReport) {
    let Some((compiled, program)) = t.compiled() else {
        return;
    };
    if !static_analysis::verify_program(compiled, program).is_clean() {
        return; // executing a corrupted stream is UB-adjacent; FLH015+ fired
    }
    let constants = static_analysis::ternary_constants(program);
    let mut stuck_nets: Vec<String> = Vec::new();
    for (c, v) in constants.iter().enumerate() {
        if v.is_none() {
            continue;
        }
        let kind = compiled.kind(c as u32);
        // Const cells are constant by design; only derived constants are
        // findings.
        if !kind.is_combinational() || matches!(kind, CellKind::Const0 | CellKind::Const1) {
            continue;
        }
        stuck_nets.push(t.cell_name(compiled.cell_id(c as u32)));
    }
    if !stuck_nets.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::ConstantNet,
                format!(
                    "{} net(s) are compile-time constants under all-X inputs",
                    stuck_nets.len()
                ),
            )
            .with_cells(stuck_nets)
            .with_hint("constant nets carry no fault effects; consider constant folding"),
        );
    }
    let dead = static_analysis::dead_instructions(compiled, program);
    if !dead.dead.is_empty() {
        let n_cells = program.cell_words() as u32;
        let mut cells: Vec<String> = Vec::new();
        for &i in &dead.dead {
            let d = program.decode_inst(i);
            if d.dst < n_cells {
                let name = t.cell_name(compiled.cell_id(d.dst));
                if cells.last() != Some(&name) {
                    cells.push(name);
                }
            }
        }
        r.push(
            Diagnostic::new(
                LintCode::DeadInstruction,
                format!(
                    "{} of {} instruction(s) feed no observation point",
                    dead.dead.len(),
                    dead.dead.len() + dead.live
                ),
            )
            .with_cells(cells)
            .with_hint("dead compiled code marks logic invisible to outputs and flip-flops"),
        );
    }
}

/// FLH026: the compiled-form X-taint walk must agree with the netlist-level
/// hold-leak walk (FLH008) cell for cell. A disagreement means the lowering
/// changed hold semantics — an Error, because every downstream simulation
/// trusts the compiled form.
fn pass_bytecode_xtaint(t: &LintTarget, r: &mut LintReport) {
    let Some(style) = t.style else {
        return; // bare netlists hold nothing by construction
    };
    if style == DftStyle::PlainScan {
        return; // plain scan makes no hold promise
    }
    let Some((compiled, program)) = t.compiled() else {
        return;
    };
    // Only structurally sound streams are walked; on corruption the decoded
    // operands may lie, but FLH023 (hold-bit vs. cell-kind disagreement)
    // must still be cross-checkable, so gate on the *structural* layer only.
    let vr = static_analysis::verify_program(compiled, program);
    if vr
        .violations
        .iter()
        .any(|v| !matches!(v.kind, static_analysis::VerifyKind::ChainMismatch))
    {
        return;
    }
    let Ok(order) = combinational_order(&t.netlist) else {
        return;
    };
    let n = t.netlist.cell_count();
    let mut frozen = vec![false; n];
    for &g in &t.gated {
        if g.index() < n {
            frozen[g.index()] = true;
        }
    }
    // Netlist-level walk: identical to pass_hold_leak so the two views
    // compute the same reference taint.
    let mut netlist_taint = vec![false; n];
    for &ff in t.netlist.flip_flops() {
        if ff.index() < n {
            netlist_taint[ff.index()] = true;
        }
    }
    for &id in &order {
        let cell = t.netlist.cell(id);
        if cell.kind().is_hold_element() || frozen[id.index()] {
            continue;
        }
        if cell.fanin().iter().any(|&f| netlist_taint[f.index()]) {
            netlist_taint[id.index()] = true;
        }
    }
    // Compiled-form walk over the instruction stream.
    let mut ff_sources = vec![false; compiled.cell_count()];
    for &ff in compiled.flip_flops() {
        ff_sources[ff as usize] = true;
    }
    let compiled_taint = static_analysis::compiled_hold_taint(program, &ff_sources, &frozen);
    let mut mismatches: Vec<String> = Vec::new();
    for id in 0..compiled.cell_count().min(n) {
        if netlist_taint[id] != compiled_taint[id] {
            mismatches.push(t.cell_name(compiled.cell_id(id as u32)));
        }
    }
    if !mismatches.is_empty() {
        r.push(
            Diagnostic::new(
                LintCode::XTaintMismatch,
                format!(
                    "{} cell(s) disagree between netlist and compiled X-taint",
                    mismatches.len()
                ),
            )
            .with_cells(mismatches)
            .with_hint("the lowering changed hold semantics; this is a compiler bug"),
        );
    }
}

/// FLH027/FLH028: static testability census. Classifies stuck-at and
/// transition faults as statically untestable using the same
/// constants + observability filter the ATPG prune pre-pass applies, so the
/// lint report predicts exactly what the fault simulators will skip.
fn pass_testability(t: &LintTarget, r: &mut LintReport) {
    let Ok(view) = TestView::new(&t.netlist) else {
        return; // uncompilable netlists are already reported structurally
    };
    let filter = StaticFilter::from_view(&view);
    let stuck = enumerate_stuck_faults(&t.netlist);
    let stuck_untestable = stuck.iter().filter(|f| filter.stuck_untestable(f)).count();
    let transition = enumerate_transition_faults(&t.netlist);
    let transition_untestable = transition
        .iter()
        .filter(|f| filter.transition_untestable(f))
        .count();
    if flh_obs::enabled() {
        flh_obs::add(
            flh_obs::Counter::LintStaticUntestable,
            (stuck_untestable + transition_untestable) as u64,
        );
    }
    if stuck_untestable > 0 {
        r.push(
            Diagnostic::new(
                LintCode::StaticUntestableStuck,
                format!(
                    "{stuck_untestable} of {} stuck-at fault(s) are statically untestable",
                    stuck.len()
                ),
            )
            .with_hint("constant activation or blocked observation; ATPG prunes these up front"),
        );
    }
    if transition_untestable > 0 {
        r.push(
            Diagnostic::new(
                LintCode::StaticUntestableTransition,
                format!(
                    "{transition_untestable} of {} transition fault(s) are statically untestable",
                    transition.len()
                ),
            )
            .with_hint("a transition needs both values plus sensitized observation of its site"),
        );
    }
}
