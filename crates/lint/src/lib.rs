//! `flh-lint` — diagnostic-driven static verification of netlists and the
//! FLH transformation.
//!
//! A multi-pass analyzer over [`flh_netlist::Netlist`] with a reusable
//! diagnostics framework: stable `FLH0xx` codes, severities, offending cell
//! names and fix hints. The pass set covers the generic structural
//! invariants every tool in the workspace assumes (acyclicity, driver
//! soundness, registry consistency, scan-chain integrity) and the
//! FLH-specific invariants from the paper: first-level-gate coverage of the
//! supply gating, keeper presence on every gated output, legality of the
//! gated set, per-style holding-cell consistency and X-safety of the V1
//! hold state during the V2 scan load.
//!
//! Diagnoses, never panics: corrupted netlists (built through the
//! `corrupt_*` hooks or hand-edited `.bench` files) come back as reports,
//! with graph-walking passes skipped — and recorded — when the graph is
//! too broken to walk.
//!
//! ```
//! use flh_core::{apply_style, DftStyle};
//! use flh_lint::{lint_dft, LintCode};
//! use flh_netlist::{generate_circuit, iscas89_profile};
//!
//! let profile = iscas89_profile("s298").unwrap();
//! let netlist = generate_circuit(&profile.generator_config()).unwrap();
//! let dft = apply_style(&netlist, DftStyle::Flh).unwrap();
//! let report = lint_dft(dft);
//! assert_eq!(report.error_count(), 0);
//! assert!(!report.fired(LintCode::FlhCoverage));
//! ```
//!
//! The `flh_lint` binary runs the same passes over `.bench` files and the
//! generated ISCAS89 profile grid, with a machine-readable JSON summary
//! for CI (`scripts/ci.sh` gates on it).

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod context;
pub mod json;
pub mod passes;
pub mod report;
pub mod runner;

pub use context::LintTarget;
pub use json::reports_to_json;
pub use passes::{bytecode_diagnostics, verify_code, Pass, PASSES};
pub use report::{Diagnostic, LintCode, LintReport, Severity};
pub use runner::{
    lint_dft, lint_netlist, lint_profile, lint_profile_grid, lint_target, target_error_report,
};
