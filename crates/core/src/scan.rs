//! Full-scan insertion.
//!
//! Converts every D flip-flop into a muxed-D scan flip-flop. The scan path
//! itself is structural metadata (`flh_sim::ScanChain` chains the
//! flip-flops in declaration order); the area/power cost of the scan mux is
//! carried by the `ScanDff` cell characterization in `flh-tech`. All three
//! DFT styles of the paper share this baseline — their reported overheads
//! are measured *on top of* it.

use flh_netlist::{CellKind, Netlist};

/// Returns a copy of `netlist` with every `Dff` retyped to `ScanDff`.
///
/// Idempotent: already-scan flip-flops are left alone.
///
/// # Example
///
/// ```
/// use flh_core::insert_scan;
/// use flh_netlist::{CellKind, Netlist};
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let ff = n.add_cell("r", CellKind::Dff, vec![a]);
/// n.add_output("y", ff);
/// let scanned = insert_scan(&n);
/// let ff = scanned.find("r").unwrap();
/// assert_eq!(scanned.cell(ff).kind(), CellKind::ScanDff);
/// ```
pub fn insert_scan(netlist: &Netlist) -> Netlist {
    let mut out = netlist.clone();
    for &ff in netlist.flip_flops() {
        if out.cell(ff).kind() == CellKind::Dff {
            out.retype_cell(ff, CellKind::ScanDff);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_all_dffs() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let f2 = n.add_cell("f2", CellKind::Dff, vec![f1]);
        n.add_output("y", f2);
        let s = insert_scan(&n);
        for &ff in s.flip_flops() {
            assert_eq!(s.cell(ff).kind(), CellKind::ScanDff);
        }
        // Original untouched.
        assert_eq!(n.cell(f1).kind(), CellKind::Dff);
        s.validate().unwrap();
    }

    #[test]
    fn idempotent() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.add_cell("f1", CellKind::ScanDff, vec![a]);
        let s = insert_scan(&n);
        assert_eq!(s.flip_flops().len(), 1);
        assert_eq!(s.cell(s.flip_flops()[0]).kind(), CellKind::ScanDff);
    }

    #[test]
    fn preserves_structure() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let f = n.add_cell("f", CellKind::Dff, vec![a]);
        let g = n.add_cell("g", CellKind::Inv, vec![f]);
        n.add_output("y", g);
        let s = insert_scan(&n);
        assert_eq!(s.cell_count(), n.cell_count());
        assert_eq!(s.gate_count(), n.gate_count());
    }
}
