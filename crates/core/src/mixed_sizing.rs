//! Section III mixed gating-transistor sizing: "Larger-sized sleep
//! transistors for gates in the critical path can be used to further reduce
//! the delay penalty. It increases the area overhead but does not affect
//! the switching power of the gates."
//!
//! The selector walks the timing-critical path, widens the gating devices
//! of every supply-gated gate on it, and repeats until the critical path
//! contains no default-sized gated gate (or the round budget runs out) —
//! the classic fixed-point sizing loop.

use flh_netlist::CellId;
use flh_tech::{CellLibrary, FlhConfig, FlhPhysical};
use flh_timing::{analyze, FlhAnnotation};

use crate::overhead::EvalConfig;
use crate::styles::{DftNetlist, DftStyle};

/// Outcome of the critical-path gating selection.
#[derive(Clone, Debug)]
pub struct MixedSizingResult {
    /// Gated cells promoted to the wide sizing.
    pub wide: Vec<CellId>,
    /// Critical delay with uniform default sizing (ps).
    pub delay_uniform_ps: f64,
    /// Critical delay with the mixed sizing (ps).
    pub delay_mixed_ps: f64,
    /// Extra active area the widening costs (µm²).
    pub extra_area_um2: f64,
    /// Sizing rounds executed.
    pub rounds: usize,
}

impl MixedSizingResult {
    /// Delay saved by the mixed sizing (ps).
    pub fn delay_saved_ps(&self) -> f64 {
        self.delay_uniform_ps - self.delay_mixed_ps
    }
}

/// Selects which gated first-level gates deserve wide gating transistors.
///
/// # Errors
///
/// Propagates levelization failures.
///
/// # Panics
///
/// Panics if `flh.style` is not [`DftStyle::Flh`].
pub fn select_critical_gating(
    flh: &DftNetlist,
    config: &EvalConfig,
    wide_config: &FlhConfig,
    max_rounds: usize,
) -> flh_netlist::Result<MixedSizingResult> {
    assert_eq!(
        flh.style,
        DftStyle::Flh,
        "mixed sizing applies to FLH netlists"
    );
    let library = CellLibrary::new(config.technology.clone());
    let default_phys = FlhPhysical::derive(&config.technology, &config.flh);
    let wide_phys = FlhPhysical::derive(&config.technology, wide_config);

    let delay_uniform_ps = analyze(
        &flh.netlist,
        &library,
        &config.timing,
        Some(FlhAnnotation::new(&flh.gated, &default_phys)),
    )?
    .critical_delay_ps();

    let mut wide: Vec<CellId> = Vec::new();
    let mut rounds = 0usize;
    while rounds < max_rounds {
        rounds += 1;
        let report = analyze(
            &flh.netlist,
            &library,
            &config.timing,
            Some(FlhAnnotation::new(&flh.gated, &default_phys).with_wide(&wide, &wide_phys)),
        )?;
        let mut promoted = false;
        for id in report.critical_path() {
            if flh.gated.contains(&id) && !wide.contains(&id) {
                wide.push(id);
                promoted = true;
            }
        }
        if !promoted {
            break;
        }
    }
    // Final delay with the converged set.
    let delay_mixed_ps = analyze(
        &flh.netlist,
        &library,
        &config.timing,
        Some(FlhAnnotation::new(&flh.gated, &default_phys).with_wide(&wide, &wide_phys)),
    )?
    .critical_delay_ps();

    Ok(MixedSizingResult {
        extra_area_um2: wide.len() as f64
            * (wide_phys.extra_area_um2 - default_phys.extra_area_um2),
        wide,
        delay_uniform_ps,
        delay_mixed_ps,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::styles::apply_style;
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn flh_circuit() -> DftNetlist {
        let n = generate_circuit(&GeneratorConfig {
            name: "mix".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 14,
            gates: 130,
            logic_depth: 10,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 77,
        })
        .unwrap();
        apply_style(&n, DftStyle::Flh).unwrap()
    }

    #[test]
    fn widening_the_critical_gates_cuts_delay() {
        let flh = flh_circuit();
        let cfg = EvalConfig::paper_default();
        let result = select_critical_gating(&flh, &cfg, &FlhConfig::wide_gating(), 8).unwrap();
        assert!(!result.wide.is_empty(), "no critical gated gate found");
        assert!(
            result.delay_mixed_ps < result.delay_uniform_ps,
            "mixed {} !< uniform {}",
            result.delay_mixed_ps,
            result.delay_uniform_ps
        );
        // Wide set stays a strict subset: the point of mixed sizing.
        assert!(result.wide.len() < flh.gated.len());
        for w in &result.wide {
            assert!(flh.gated.contains(w));
        }
        assert!(result.extra_area_um2 > 0.0);
    }

    #[test]
    fn area_cost_is_much_smaller_than_uniform_widening() {
        let flh = flh_circuit();
        let cfg = EvalConfig::paper_default();
        let wide_cfg = FlhConfig::wide_gating();
        let result = select_critical_gating(&flh, &cfg, &wide_cfg, 8).unwrap();
        let default_phys = FlhPhysical::derive(&cfg.technology, &cfg.flh);
        let wide_phys = FlhPhysical::derive(&cfg.technology, &wide_cfg);
        let uniform_widening_cost =
            flh.gated.len() as f64 * (wide_phys.extra_area_um2 - default_phys.extra_area_um2);
        assert!(
            result.extra_area_um2 < 0.5 * uniform_widening_cost,
            "mixed {} vs uniform {}",
            result.extra_area_um2,
            uniform_widening_cost
        );
    }

    #[test]
    fn converges_within_the_round_budget() {
        let flh = flh_circuit();
        let cfg = EvalConfig::paper_default();
        let result = select_critical_gating(&flh, &cfg, &FlhConfig::wide_gating(), 20).unwrap();
        assert!(result.rounds <= 20);
        // Re-running with the budget it used reproduces the same set.
        let again =
            select_critical_gating(&flh, &cfg, &FlhConfig::wide_gating(), result.rounds).unwrap();
        assert_eq!(result.wide, again.wide);
    }
}
