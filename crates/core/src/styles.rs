//! The three holding styles for arbitrary two-pattern test application.

use flh_netlist::{analysis, CellId, CellKind, Netlist};
use flh_sim::HoldMechanism;

use crate::scan::insert_scan;

/// Which DFT-for-delay-test style to apply on top of full scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DftStyle {
    /// Full scan only — the baseline all overheads are measured against.
    PlainScan,
    /// Enhanced scan: a hold latch at the output of every scan flip-flop
    /// (Fig. 1(b) left), controlled by the extra `HOLD` signal.
    EnhancedScan,
    /// MUX-based holding at the output of every scan flip-flop (Fig. 1(b)
    /// right, after Zhang et al. \[13\]).
    MuxHold,
    /// First Level Hold — the paper's technique: supply gating plus a
    /// minimum-sized keeper on every first-level gate; no holding element
    /// in the stimulus path and no extra control signal.
    Flh,
}

impl DftStyle {
    /// Human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DftStyle::PlainScan => "plain scan",
            DftStyle::EnhancedScan => "enhanced scan",
            DftStyle::MuxHold => "MUX-based",
            DftStyle::Flh => "FLH",
        }
    }

    /// The holding-cell kind this style splices into the stimulus path, if
    /// any. `flh-lint` uses this to verify that a transformed netlist only
    /// carries the holding cells its style calls for.
    pub fn hold_cell_kind(self) -> Option<CellKind> {
        match self {
            DftStyle::EnhancedScan => Some(CellKind::HoldLatch),
            DftStyle::MuxHold => Some(CellKind::HoldMux),
            DftStyle::PlainScan | DftStyle::Flh => None,
        }
    }

    /// True for the style that holds V1 by supply-gating first-level gates
    /// (and therefore requires keeper latches on the gated outputs).
    pub fn uses_supply_gating(self) -> bool {
        self == DftStyle::Flh
    }
}

impl std::fmt::Display for DftStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A netlist with one DFT style applied.
#[derive(Clone, Debug)]
pub struct DftNetlist {
    /// The transformed circuit.
    pub netlist: Netlist,
    /// The style applied.
    pub style: DftStyle,
    /// FLH only: the supply-gated first-level gates.
    pub gated: Vec<CellId>,
    /// FLH only: the gates carrying a minimum-sized keeper latch on their
    /// output (Fig. 3 of the paper). The transform puts a keeper on every
    /// supply-gated output, so this equals [`DftNetlist::gated`]; `flh-lint`
    /// checks the two stay in sync (`FLH011`).
    pub keepers: Vec<CellId>,
    /// Enhanced scan / MUX only: the inserted holding cells.
    pub hold_cells: Vec<CellId>,
}

impl DftNetlist {
    /// The simulator-facing holding mechanism for this style.
    pub fn hold_mechanism(&self) -> HoldMechanism {
        match self.style {
            DftStyle::PlainScan => HoldMechanism::None,
            DftStyle::EnhancedScan | DftStyle::MuxHold => HoldMechanism::HoldCells,
            DftStyle::Flh => HoldMechanism::SupplyGating(self.gated.clone()),
        }
    }
}

/// Applies a DFT style to a circuit (full-scan insertion happens first; the
/// input may carry plain `Dff`s).
///
/// * `EnhancedScan` / `MuxHold`: a holding cell is spliced between every
///   scan flip-flop and **all** of its readers (Fig. 1(a): the holding
///   logic sits in the stimulus path).
/// * `Flh`: no structural change beyond scan — the unique first-level
///   gates are computed and returned in [`DftNetlist::gated`].
///
/// # Errors
///
/// Propagates structural validation failures.
///
/// # Example
///
/// ```
/// use flh_core::{apply_style, DftStyle};
/// use flh_netlist::{CellKind, Netlist};
///
/// # fn main() -> Result<(), flh_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let ff = n.add_cell("r", CellKind::Dff, vec![a]);
/// let g = n.add_cell("g", CellKind::Inv, vec![ff]);
/// n.add_output("y", g);
/// let es = apply_style(&n, DftStyle::EnhancedScan)?;
/// assert_eq!(es.hold_cells.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn apply_style(netlist: &Netlist, style: DftStyle) -> flh_netlist::Result<DftNetlist> {
    let mut out = insert_scan(netlist);
    let mut gated = Vec::new();
    let mut hold_cells = Vec::new();

    match style {
        DftStyle::PlainScan => {}
        DftStyle::EnhancedScan | DftStyle::MuxHold => {
            let kind = if style == DftStyle::EnhancedScan {
                CellKind::HoldLatch
            } else {
                CellKind::HoldMux
            };
            let ffs: Vec<CellId> = out.flip_flops().to_vec();
            for ff in ffs {
                let name = format!("{}_hold", out.cell(ff).name());
                let hold = out.add_cell(name, kind, vec![ff]);
                out.redirect_readers(ff, hold, &[]);
                hold_cells.push(hold);
            }
        }
        DftStyle::Flh => {
            let fanouts = analysis::FanoutMap::compute(&out);
            gated = analysis::first_level_gates(&out, &fanouts);
        }
    }

    out.validate()?;
    let keepers = gated.clone();
    Ok(DftNetlist {
        netlist: out,
        style,
        gated,
        keepers,
        hold_cells,
    })
}

/// Applies FLH with the Section IV BIST extension: the first-level gates of
/// the **primary inputs** are supply-gated too, so a serially loaded PI
/// register (test-per-scan BIST applying "test patterns … to the primary
/// inputs serially, as in the scan chain") can change bit by bit while the
/// combinational circuit keeps seeing V1 everywhere.
///
/// # Errors
///
/// Propagates structural validation failures.
pub fn apply_flh_with_pi_hold(netlist: &Netlist) -> flh_netlist::Result<DftNetlist> {
    let mut dft = apply_style(netlist, DftStyle::Flh)?;
    let fanouts = analysis::FanoutMap::compute(&dft.netlist);
    let mut sources: Vec<CellId> = dft.netlist.flip_flops().to_vec();
    sources.extend_from_slice(dft.netlist.inputs());
    dft.gated = analysis::first_level_gates_of(&dft.netlist, &fanouts, &sources);
    dft.keepers = dft.gated.clone();
    Ok(dft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::analysis::FanoutMap;

    /// Two FFs sharing a first-level gate, plus a private one.
    fn circuit() -> Netlist {
        let mut n = Netlist::new("c");
        let a = n.add_input("a");
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let f2 = n.add_cell("f2", CellKind::Dff, vec![a]);
        let g1 = n.add_cell("g1", CellKind::Nand2, vec![f1, f2]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![f1]);
        let g3 = n.add_cell("g3", CellKind::Nor2, vec![g1, g2]);
        n.set_fanin_pin(f1, 0, g3);
        n.set_fanin_pin(f2, 0, g1);
        n.add_output("y", g3);
        n
    }

    #[test]
    fn plain_scan_changes_nothing_structural() {
        let n = circuit();
        let d = apply_style(&n, DftStyle::PlainScan).unwrap();
        assert_eq!(d.netlist.cell_count(), n.cell_count());
        assert!(d.gated.is_empty());
        assert!(d.hold_cells.is_empty());
        assert!(matches!(d.hold_mechanism(), HoldMechanism::None));
    }

    #[test]
    fn enhanced_scan_splices_latches_into_all_stimulus_paths() {
        let n = circuit();
        let d = apply_style(&n, DftStyle::EnhancedScan).unwrap();
        assert_eq!(d.hold_cells.len(), 2);
        // Every former reader of a FF now reads the latch.
        let fo = FanoutMap::compute(&d.netlist);
        for &ff in d.netlist.flip_flops() {
            let readers = fo.readers(ff);
            assert_eq!(readers.len(), 1, "FF must only feed its latch");
            assert_eq!(d.netlist.cell(readers[0]).kind(), CellKind::HoldLatch);
        }
        // g1 reads both latches now.
        let g1 = d.netlist.find("g1").unwrap();
        for &f in d.netlist.cell(g1).fanin() {
            assert!(d.netlist.cell(f).kind().is_hold_element());
        }
        assert!(matches!(d.hold_mechanism(), HoldMechanism::HoldCells));
    }

    #[test]
    fn mux_style_uses_hold_mux_cells() {
        let n = circuit();
        let d = apply_style(&n, DftStyle::MuxHold).unwrap();
        assert_eq!(d.hold_cells.len(), 2);
        for &h in &d.hold_cells {
            assert_eq!(d.netlist.cell(h).kind(), CellKind::HoldMux);
        }
    }

    #[test]
    fn flh_identifies_unique_first_level_gates() {
        let n = circuit();
        let d = apply_style(&n, DftStyle::Flh).unwrap();
        // g1 (shared) and g2: two unique first-level gates.
        assert_eq!(d.gated.len(), 2);
        let names: Vec<&str> = d
            .gated
            .iter()
            .map(|&id| d.netlist.cell(id).name())
            .collect();
        assert!(names.contains(&"g1"));
        assert!(names.contains(&"g2"));
        // No structural change: same cell count as plain scan.
        assert_eq!(d.netlist.cell_count(), n.cell_count());
        assert!(matches!(d.hold_mechanism(), HoldMechanism::SupplyGating(_)));
    }

    #[test]
    fn all_styles_scan_convert_the_flip_flops() {
        let n = circuit();
        for style in [
            DftStyle::PlainScan,
            DftStyle::EnhancedScan,
            DftStyle::MuxHold,
            DftStyle::Flh,
        ] {
            let d = apply_style(&n, style).unwrap();
            for &ff in d.netlist.flip_flops() {
                assert_eq!(d.netlist.cell(ff).kind(), CellKind::ScanDff, "{style}");
            }
            d.netlist.validate().unwrap();
        }
    }

    #[test]
    fn pi_hold_variant_gates_primary_input_readers_too() {
        use flh_sim::{Logic, LogicSim};
        let n = circuit();
        let plain = apply_style(&n, DftStyle::Flh).unwrap();
        let extended = apply_flh_with_pi_hold(&n).unwrap();
        assert!(extended.gated.len() >= plain.gated.len());
        // Every combinational reader of a PI is now gated.
        let fo = FanoutMap::compute(&extended.netlist);
        for &pi in extended.netlist.inputs() {
            for &r in fo.readers(pi) {
                if extended.netlist.cell(r).kind().is_combinational() {
                    assert!(extended.gated.contains(&r), "ungated PI reader");
                }
            }
        }
        // Behavioural check: with sleep engaged, changing a PI bit by bit
        // (a serial BIST PI load) leaves the whole combinational block
        // frozen.
        let mut sim = LogicSim::new(&extended.netlist).unwrap();
        sim.set_gated_cells(&extended.gated);
        for i in 0..extended.netlist.flip_flops().len() {
            sim.set_ff_by_index(i, Logic::Zero);
        }
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        sim.set_sleep(true);
        sim.reset_activity();
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        let comb_toggles: u64 = extended
            .netlist
            .iter()
            .filter(|(_, c)| c.kind().is_combinational())
            .map(|(id, _)| sim.activity().toggles(id))
            .sum();
        assert_eq!(comb_toggles, 0, "PI change leaked through gated boundary");
    }

    #[test]
    fn style_labels() {
        assert_eq!(DftStyle::Flh.to_string(), "FLH");
        assert_eq!(DftStyle::EnhancedScan.label(), "enhanced scan");
    }
}
