//! # First Level Hold (FLH) — the paper's contribution
//!
//! Design-for-testability transforms enabling arbitrary two-pattern delay
//! test application, and the machinery to compare them:
//!
//! * [`scan`] — full-scan insertion (every D flip-flop becomes a muxed-D
//!   scan flip-flop on one chain), the common baseline of all styles;
//! * [`styles`] — the three holding styles of the paper:
//!   [`DftStyle::EnhancedScan`] (hold latch per scan cell),
//!   [`DftStyle::MuxHold`] (holding MUX per scan cell, after ref.\[13\]), and
//!   [`DftStyle::Flh`] (supply gating + keeper on the *first-level gates*,
//!   the unique fanout gates of the scan flip-flops — the new technique);
//! * [`overhead`] — the Table I/II/III methodology: area (Σ W·L), critical
//!   path delay, and normal-mode power of each style relative to the plain
//!   full-scan baseline;
//! * [`fanout_opt`] — the Section V local fanout-reduction algorithm that
//!   shrinks the number of first-level gates under a critical-path delay
//!   constraint.
//!
//! # Quickstart
//!
//! ```
//! use flh_core::{apply_style, DftStyle};
//! use flh_netlist::{CellKind, Netlist};
//!
//! # fn main() -> Result<(), flh_netlist::NetlistError> {
//! let mut n = Netlist::new("toy");
//! let a = n.add_input("a");
//! let ff = n.add_cell("r", CellKind::Dff, vec![a]);
//! let g = n.add_cell("g", CellKind::Nand2, vec![ff, a]);
//! n.set_fanin_pin(ff, 0, g);
//! n.add_output("y", g);
//!
//! let flh = apply_style(&n, DftStyle::Flh)?;
//! assert_eq!(flh.gated.len(), 1); // NAND2 is the only first-level gate
//! # Ok(())
//! # }
//! ```

pub mod fanout_opt;
pub mod mixed_sizing;
pub mod overhead;
pub mod scan;
pub mod styles;

pub use fanout_opt::{optimize_fanout, FanoutOptConfig, FanoutOptResult};
pub use mixed_sizing::{select_critical_gating, MixedSizingResult};
pub use overhead::{
    evaluate_against, evaluate_all, evaluate_all_pooled, evaluate_style, overhead_improvement_pct,
    EvalConfig, StyleEvaluation,
};
pub use scan::insert_scan;
pub use styles::{apply_flh_with_pi_hold, apply_style, DftNetlist, DftStyle};
