//! The Table I/II/III evaluation methodology: per-style area, delay and
//! normal-mode power, relative to the plain full-scan baseline.

use flh_exec::ThreadPool;
use flh_netlist::Netlist;
use flh_power::{random_vector_power, FlhPowerAnnotation, PowerConfig};
use flh_tech::{CellLibrary, FlhConfig, FlhPhysical, Technology};
use flh_timing::{analyze, FlhAnnotation, TimingConfig};

use crate::styles::{apply_style, DftNetlist, DftStyle};

/// Shared evaluation environment.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Device/cell technology.
    pub technology: Technology,
    /// FLH gating/keeper sizing.
    pub flh: FlhConfig,
    /// STA environment.
    pub timing: TimingConfig,
    /// Power environment.
    pub power: PowerConfig,
    /// Number of random vectors for power measurement (the paper uses 100).
    pub vectors: usize,
    /// RNG seed for the vector stream (shared across styles so the
    /// comparison sees identical stimuli).
    pub seed: u64,
}

impl EvalConfig {
    /// The paper's setup: 70 nm models, default sizing, 100 random vectors.
    pub fn paper_default() -> Self {
        EvalConfig {
            technology: Technology::bptm70(),
            flh: FlhConfig::paper_default(),
            timing: TimingConfig::paper_default(),
            power: PowerConfig::paper_default(),
            vectors: 100,
            seed: 0x5eed,
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::paper_default()
    }
}

/// Absolute and relative metrics of one style on one circuit.
#[derive(Clone, Debug)]
pub struct StyleEvaluation {
    /// The evaluated style.
    pub style: DftStyle,
    /// Baseline (plain scan) active area (µm²).
    pub base_area_um2: f64,
    /// Style active area including FLH gating/keeper hardware (µm²).
    pub area_um2: f64,
    /// Baseline critical-path delay (ps).
    pub base_delay_ps: f64,
    /// Style critical-path delay (ps).
    pub delay_ps: f64,
    /// Baseline normal-mode power (µW).
    pub base_power_uw: f64,
    /// Style normal-mode power (µW).
    pub power_uw: f64,
    /// Number of supply-gated first-level gates (FLH) or zero.
    pub first_level_gates: usize,
    /// Number of inserted holding cells (enhanced scan / MUX) or zero.
    pub hold_cells: usize,
}

impl StyleEvaluation {
    /// Percentage area increase over the plain-scan baseline (Table I).
    pub fn area_increase_pct(&self) -> f64 {
        100.0 * (self.area_um2 - self.base_area_um2) / self.base_area_um2
    }

    /// Percentage delay increase over the baseline (Table II).
    pub fn delay_increase_pct(&self) -> f64 {
        100.0 * (self.delay_ps - self.base_delay_ps) / self.base_delay_ps
    }

    /// Percentage power increase over the baseline (Table III).
    pub fn power_increase_pct(&self) -> f64 {
        100.0 * (self.power_uw - self.base_power_uw) / self.base_power_uw
    }
}

/// Percentage improvement of overhead `a` relative to overhead `b`
/// (the paper's "% improvement over" columns): `100·(1 − a/b)`.
pub fn overhead_improvement_pct(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        100.0 * (1.0 - a / b)
    }
}

/// Evaluates one style against the plain-scan baseline of the same circuit.
///
/// # Errors
///
/// Propagates structural/levelization failures.
pub fn evaluate_style(
    netlist: &Netlist,
    style: DftStyle,
    config: &EvalConfig,
) -> flh_netlist::Result<StyleEvaluation> {
    let base = apply_style(netlist, DftStyle::PlainScan)?;
    let styled = apply_style(netlist, style)?;
    evaluate_against(&base, &styled, config)
}

/// Evaluates all four styles, computing the baseline once.
///
/// # Errors
///
/// Propagates structural/levelization failures.
pub fn evaluate_all(
    netlist: &Netlist,
    config: &EvalConfig,
) -> flh_netlist::Result<Vec<StyleEvaluation>> {
    evaluate_all_pooled(netlist, config, &ThreadPool::serial())
}

/// Pooled [`evaluate_all`]: the shared plain-scan baseline is built once,
/// then each style is transformed and evaluated as an independent cell on
/// the pool. Per-style metrics are deterministic functions of
/// `(netlist, style, config)`, and the pool returns cells in style order,
/// so the result is identical at any pool size.
///
/// # Errors
///
/// Propagates structural/levelization failures.
pub fn evaluate_all_pooled(
    netlist: &Netlist,
    config: &EvalConfig,
    pool: &ThreadPool,
) -> flh_netlist::Result<Vec<StyleEvaluation>> {
    let base = apply_style(netlist, DftStyle::PlainScan)?;
    let styles = [
        DftStyle::PlainScan,
        DftStyle::EnhancedScan,
        DftStyle::MuxHold,
        DftStyle::Flh,
    ];
    pool.run(styles.len(), |i| {
        let styled = apply_style(netlist, styles[i])?;
        evaluate_against(&base, &styled, config)
    })
    .into_iter()
    .collect()
}

/// Evaluates a pre-built DFT netlist against a pre-built baseline. This is
/// the entry point the Section V fanout optimizer uses after modifying the
/// FLH netlist.
///
/// # Errors
///
/// Propagates structural/levelization failures.
pub fn evaluate_against(
    base: &DftNetlist,
    styled: &DftNetlist,
    config: &EvalConfig,
) -> flh_netlist::Result<StyleEvaluation> {
    let library = CellLibrary::new(config.technology.clone());
    let flh_phys = FlhPhysical::derive(&config.technology, &config.flh);

    // Baseline metrics.
    let base_area_um2 = library.netlist_area_um2(&base.netlist);
    let base_delay_ps = analyze(&base.netlist, &library, &config.timing, None)?.critical_delay_ps();
    let base_power_uw = random_vector_power(
        &base.netlist,
        &library,
        &config.power,
        None,
        config.vectors,
        config.seed,
    )?
    .total_uw();

    // Style metrics.
    let is_flh = styled.style == DftStyle::Flh;
    let mut area_um2 = library.netlist_area_um2(&styled.netlist);
    if is_flh {
        area_um2 += styled.gated.len() as f64 * flh_phys.extra_area_um2;
    }
    let timing_ann = if is_flh {
        Some(FlhAnnotation::new(&styled.gated, &flh_phys))
    } else {
        None
    };
    let delay_ps =
        analyze(&styled.netlist, &library, &config.timing, timing_ann)?.critical_delay_ps();
    let power_ann = if is_flh {
        Some(FlhPowerAnnotation {
            gated: &styled.gated,
            physical: &flh_phys,
        })
    } else {
        None
    };
    let power_uw = random_vector_power(
        &styled.netlist,
        &library,
        &config.power,
        power_ann.as_ref(),
        config.vectors,
        config.seed,
    )?
    .total_uw();

    Ok(StyleEvaluation {
        style: styled.style,
        base_area_um2,
        area_um2,
        base_delay_ps,
        delay_ps,
        base_power_uw,
        power_uw,
        first_level_gates: styled.gated.len(),
        hold_cells: styled.hold_cells.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn test_circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "eval".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 12,
            gates: 120,
            logic_depth: 10,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 99,
        })
        .unwrap()
    }

    fn quick_config() -> EvalConfig {
        EvalConfig {
            vectors: 40,
            ..EvalConfig::paper_default()
        }
    }

    #[test]
    fn baseline_style_has_zero_overheads() {
        let n = test_circuit();
        let e = evaluate_style(&n, DftStyle::PlainScan, &quick_config()).unwrap();
        assert!(e.area_increase_pct().abs() < 1e-9);
        assert!(e.delay_increase_pct().abs() < 1e-9);
        assert!(e.power_increase_pct().abs() < 1e-9);
    }

    #[test]
    fn table_ordering_area() {
        // Paper Table I: enhanced scan largest, then MUX, FLH smallest (for
        // typical fanout ratios).
        let n = test_circuit();
        let cfg = quick_config();
        let evals = evaluate_all(&n, &cfg).unwrap();
        let get = |s: DftStyle| {
            evals
                .iter()
                .find(|e| e.style == s)
                .unwrap()
                .area_increase_pct()
        };
        let es = get(DftStyle::EnhancedScan);
        let mx = get(DftStyle::MuxHold);
        let flh = get(DftStyle::Flh);
        assert!(es > mx, "enhanced {es} !> mux {mx}");
        assert!(mx > flh, "mux {mx} !> flh {flh}");
        assert!(flh > 0.0);
    }

    #[test]
    fn table_ordering_delay() {
        // Paper Table II: MUX worst, enhanced scan next, FLH least.
        let n = test_circuit();
        let cfg = quick_config();
        let evals = evaluate_all(&n, &cfg).unwrap();
        let get = |s: DftStyle| {
            evals
                .iter()
                .find(|e| e.style == s)
                .unwrap()
                .delay_increase_pct()
        };
        let es = get(DftStyle::EnhancedScan);
        let mx = get(DftStyle::MuxHold);
        let flh = get(DftStyle::Flh);
        assert!(mx > es, "mux {mx} !> enhanced {es}");
        assert!(es > flh, "enhanced {es} !> flh {flh}");
        assert!(flh >= 0.0);
    }

    #[test]
    fn table_ordering_power() {
        // Paper Table III: FLH power overhead near zero, far below both.
        let n = test_circuit();
        let cfg = quick_config();
        let evals = evaluate_all(&n, &cfg).unwrap();
        let get = |s: DftStyle| {
            evals
                .iter()
                .find(|e| e.style == s)
                .unwrap()
                .power_increase_pct()
        };
        let es = get(DftStyle::EnhancedScan);
        let mx = get(DftStyle::MuxHold);
        let flh = get(DftStyle::Flh);
        assert!(es > 5.0, "enhanced scan power overhead {es}% too small");
        assert!(mx > 5.0);
        assert!(flh < 0.35 * es, "flh {flh}% not << enhanced {es}%");
    }

    #[test]
    fn improvement_metric() {
        assert!((overhead_improvement_pct(2.0, 8.0) - 75.0).abs() < 1e-9);
        assert_eq!(overhead_improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn flh_counts_first_level_gates() {
        let n = test_circuit();
        let e = evaluate_style(&n, DftStyle::Flh, &quick_config()).unwrap();
        // 12 FFs × 1.8 ≈ 22 unique first-level gates.
        assert_eq!(e.first_level_gates, 22);
        assert_eq!(e.hold_cells, 0);
    }

    #[test]
    fn flh_area_accounting_is_exact() {
        use flh_tech::{CellLibrary, FlhPhysical};
        let n = test_circuit();
        let cfg = quick_config();
        let e = evaluate_style(&n, DftStyle::Flh, &cfg).unwrap();
        let lib = CellLibrary::new(cfg.technology.clone());
        let phys = FlhPhysical::derive(&cfg.technology, &cfg.flh);
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let expect =
            lib.netlist_area_um2(&flh.netlist) + flh.gated.len() as f64 * phys.extra_area_um2;
        assert!((e.area_um2 - expect).abs() < 1e-9);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let n = test_circuit();
        let cfg = quick_config();
        let a = evaluate_style(&n, DftStyle::EnhancedScan, &cfg).unwrap();
        let b = evaluate_style(&n, DftStyle::EnhancedScan, &cfg).unwrap();
        assert_eq!(a.area_um2, b.area_um2);
        assert_eq!(a.delay_ps, b.delay_ps);
        assert_eq!(a.power_uw, b.power_uw);
    }

    #[test]
    fn shared_seed_means_shared_baseline() {
        // All styles in one evaluate_all run report the same baseline.
        let n = test_circuit();
        let evals = evaluate_all(&n, &quick_config()).unwrap();
        for w in evals.windows(2) {
            assert_eq!(w[0].base_area_um2, w[1].base_area_um2);
            assert_eq!(w[0].base_delay_ps, w[1].base_delay_ps);
            assert_eq!(w[0].base_power_uw, w[1].base_power_uw);
        }
    }

    #[test]
    fn pooled_evaluation_matches_serial() {
        let n = test_circuit();
        let cfg = quick_config();
        let serial = evaluate_all(&n, &cfg).unwrap();
        for workers in [2, 4] {
            let pooled = evaluate_all_pooled(&n, &cfg, &ThreadPool::new(workers)).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (p, s) in pooled.iter().zip(&serial) {
                assert_eq!(p.style, s.style, "workers = {workers}");
                assert_eq!(p.area_um2, s.area_um2);
                assert_eq!(p.delay_ps, s.delay_ps);
                assert_eq!(p.power_uw, s.power_uw);
                assert_eq!(p.base_power_uw, s.base_power_uw);
            }
        }
    }

    #[test]
    fn hold_cell_counts_match_flip_flops() {
        let n = test_circuit();
        let cfg = quick_config();
        let es = evaluate_style(&n, DftStyle::EnhancedScan, &cfg).unwrap();
        assert_eq!(es.hold_cells, n.flip_flops().len());
        assert_eq!(es.first_level_gates, 0);
        let mx = evaluate_style(&n, DftStyle::MuxHold, &cfg).unwrap();
        assert_eq!(mx.hold_cells, n.flip_flops().len());
    }
}
