//! Section V: local fanout reduction under a delay constraint.
//!
//! FLH's area overhead is proportional to the number of *unique first-level
//! gates*. The paper's "low-complexity local fanout reduction algorithm"
//! shrinks that number by funnelling the fanout of high-fanout scan
//! flip-flops through a polarity-preserving pair of cascaded inverters, so
//! only the (single) first inverter needs gating hardware:
//!
//! * no inverter is inserted into the critical path — readers on the
//!   current critical path keep their direct connection, and any move that
//!   would degrade the critical delay is rolled back;
//! * if the flip-flop already drives an inverter, it is reused as the
//!   first element and only the second inverter is added ("If a scan
//!   flip-flop already has an inverter connected to it, we do not need the
//!   second inverter");
//! * logic function is unchanged (two cascaded inverters are the
//!   identity), which the tests verify by simulation.

use std::collections::HashSet;

use flh_netlist::{analysis, CellId, CellKind, Netlist};
use flh_tech::{CellLibrary, FlhPhysical};
use flh_timing::{analyze, FlhAnnotation, TimingConfig};

use crate::overhead::EvalConfig;
use crate::styles::{DftNetlist, DftStyle};

/// Controls for the optimizer.
#[derive(Clone, Debug)]
pub struct FanoutOptConfig {
    /// Flip-flops with more unique combinational readers than this are
    /// optimization candidates.
    pub fanout_threshold: usize,
    /// Evaluation environment (technology, sizing, STA settings).
    pub eval: EvalConfig,
}

impl FanoutOptConfig {
    /// Paper-flavoured defaults: target flip-flops with more than two
    /// first-level gates.
    pub fn paper_default() -> Self {
        FanoutOptConfig {
            fanout_threshold: 2,
            eval: EvalConfig::paper_default(),
        }
    }
}

impl Default for FanoutOptConfig {
    fn default() -> Self {
        FanoutOptConfig::paper_default()
    }
}

/// Outcome of the optimization.
#[derive(Clone, Debug)]
pub struct FanoutOptResult {
    /// The rewritten netlist (inverter pairs inserted).
    pub netlist: Netlist,
    /// The new supply-gated first-level gate set.
    pub gated: Vec<CellId>,
    /// Unique first-level gates before optimization.
    pub flg_before: usize,
    /// Unique first-level gates after optimization.
    pub flg_after: usize,
    /// Inverters added.
    pub inverters_added: usize,
    /// Existing inverters reused as the first pair element.
    pub reused_inverters: usize,
    /// Flip-flops actually optimized (after delay-constraint rollbacks).
    pub optimized_ffs: usize,
    /// FLH area overhead before (µm²): gating hardware only.
    pub area_overhead_before_um2: f64,
    /// FLH area overhead after (µm²): gating hardware plus added inverters.
    pub area_overhead_after_um2: f64,
}

impl FanoutOptResult {
    /// Percentage improvement in FLH area overhead (Table IV's "improv").
    pub fn area_improvement_pct(&self) -> f64 {
        if self.area_overhead_before_um2 == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.area_overhead_after_um2 / self.area_overhead_before_um2)
        }
    }
}

fn unique_comb_readers(
    netlist: &Netlist,
    fanouts: &analysis::FanoutMap,
    ff: CellId,
) -> Vec<CellId> {
    let mut seen = HashSet::new();
    let mut readers = Vec::new();
    for &r in fanouts.readers(ff) {
        if netlist.cell(r).kind().is_combinational() && seen.insert(r) {
            readers.push(r);
        }
    }
    readers
}

fn gated_area(gates: usize, inv_area: f64, invs: usize, flh: &FlhPhysical) -> f64 {
    gates as f64 * flh.extra_area_um2 + invs as f64 * inv_area
}

fn critical_delay(
    netlist: &Netlist,
    library: &CellLibrary,
    timing: &TimingConfig,
    gated: &[CellId],
    flh: &FlhPhysical,
) -> flh_netlist::Result<(f64, Vec<CellId>)> {
    let report = analyze(
        netlist,
        library,
        timing,
        Some(FlhAnnotation::new(gated, flh)),
    )?;
    Ok((report.critical_delay_ps(), report.critical_path()))
}

/// Runs the Section V optimization on an FLH netlist.
///
/// # Errors
///
/// Propagates structural/levelization failures.
///
/// # Panics
///
/// Panics if `flh_netlist.style` is not [`DftStyle::Flh`].
pub fn optimize_fanout(
    flh_netlist: &DftNetlist,
    config: &FanoutOptConfig,
) -> flh_netlist::Result<FanoutOptResult> {
    assert_eq!(
        flh_netlist.style,
        DftStyle::Flh,
        "fanout optimization applies to FLH netlists"
    );
    let library = CellLibrary::new(config.eval.technology.clone());
    let flh_phys = FlhPhysical::derive(&config.eval.technology, &config.eval.flh);
    let inv_area = library.physical(CellKind::Inv).active_area_um2;

    let mut netlist = flh_netlist.netlist.clone();
    let mut gated = flh_netlist.gated.clone();
    let flg_before = gated.len();
    let (delay_budget_ps, mut crit_path) =
        critical_delay(&netlist, &library, &config.eval.timing, &gated, &flh_phys)?;

    // Candidates in decreasing fanout order.
    let fanouts = analysis::FanoutMap::compute(&netlist);
    let mut candidates: Vec<(CellId, usize)> = netlist
        .flip_flops()
        .iter()
        .map(|&ff| (ff, unique_comb_readers(&netlist, &fanouts, ff).len()))
        .filter(|&(_, n)| n > config.fanout_threshold)
        .collect();
    candidates.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    let mut inverters_added = 0usize;
    let mut reused_inverters = 0usize;
    let mut optimized_ffs = 0usize;

    for (ff, _) in candidates {
        let fanouts = analysis::FanoutMap::compute(&netlist);
        let readers = unique_comb_readers(&netlist, &fanouts, ff);
        let crit_set: HashSet<CellId> = crit_path.iter().copied().collect();
        let (kept, movable): (Vec<CellId>, Vec<CellId>) =
            readers.iter().partition(|r| crit_set.contains(r));
        // Gain: |readers| gated gates become |kept| + 1 (the first
        // inverter). Require a real reduction.
        if movable.len() < 2 || kept.len() + 2 > readers.len() {
            continue;
        }

        let snapshot = netlist.clone();
        let gated_snapshot = gated.clone();
        let inv_snapshot = (inverters_added, reused_inverters);

        // Reuse an existing single-fanout... any existing inverter reader
        // as the first pair element if one is movable.
        let existing_inv = movable
            .iter()
            .copied()
            .find(|&r| netlist.cell(r).kind() == CellKind::Inv);
        let (inv1, redirect): (CellId, Vec<CellId>) = match existing_inv {
            Some(inv1) => {
                reused_inverters += 1;
                (
                    inv1,
                    movable.iter().copied().filter(|&r| r != inv1).collect(),
                )
            }
            None => {
                let name = netlist.fresh_name("fo_inv1_");
                let inv1 = netlist.add_cell(name, CellKind::Inv, vec![ff]);
                inverters_added += 1;
                (inv1, movable.clone())
            }
        };
        let name = netlist.fresh_name("fo_inv2_");
        let inv2 = netlist.add_cell(name, CellKind::Inv, vec![inv1]);
        inverters_added += 1;
        netlist.redirect_selected_readers(ff, inv2, &redirect);

        // New gated set: recompute first-level gates. A moved reader that
        // also reads *other* flip-flops stays gated, so the global count
        // can fail to shrink — accept only strict improvements.
        let fanouts = analysis::FanoutMap::compute(&netlist);
        let new_gated = analysis::first_level_gates(&netlist, &fanouts);
        let improves = new_gated.len() < gated.len();

        let timing_ok = improves
            && matches!(
                critical_delay(
                    &netlist,
                    &library,
                    &config.eval.timing,
                    &new_gated,
                    &flh_phys,
                ),
                Ok((delay, _)) if delay <= delay_budget_ps * (1.0 + 1e-9)
            );
        if timing_ok {
            let (_, path) = critical_delay(
                &netlist,
                &library,
                &config.eval.timing,
                &new_gated,
                &flh_phys,
            )?;
            gated = new_gated;
            crit_path = path;
            optimized_ffs += 1;
        } else {
            // Constraint violated or no gain: roll back this flip-flop.
            netlist = snapshot;
            gated = gated_snapshot;
            inverters_added = inv_snapshot.0;
            reused_inverters = inv_snapshot.1;
        }
    }

    netlist.validate()?;
    let flg_after = gated.len();
    Ok(FanoutOptResult {
        area_overhead_before_um2: gated_area(flg_before, inv_area, 0, &flh_phys),
        area_overhead_after_um2: gated_area(flg_after, inv_area, inverters_added, &flh_phys),
        netlist,
        gated,
        flg_before,
        flg_after,
        inverters_added,
        reused_inverters,
        optimized_ffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::styles::apply_style;
    use flh_netlist::{generate_circuit, GeneratorConfig};
    use flh_rng::Rng;
    use flh_sim::{Logic, LogicSim};

    fn hot_circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "hot".into(),
            primary_inputs: 6,
            primary_outputs: 4,
            flip_flops: 10,
            gates: 110,
            logic_depth: 9,
            avg_ff_fanout: 3.2,
            unique_flg_ratio: 2.6,
            hot_ff_fanout: Some(8),
            seed: 1234,
        })
        .unwrap()
    }

    #[test]
    fn reduces_first_level_gates() {
        let n = hot_circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let result = optimize_fanout(&flh, &FanoutOptConfig::paper_default()).unwrap();
        assert!(result.optimized_ffs > 0, "nothing optimized");
        assert!(
            result.flg_after < result.flg_before,
            "{} !< {}",
            result.flg_after,
            result.flg_before
        );
        assert!(result.area_improvement_pct() > 0.0);
    }

    #[test]
    fn keeps_critical_delay() {
        let cfg = FanoutOptConfig::paper_default();
        let n = hot_circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let library = CellLibrary::new(cfg.eval.technology.clone());
        let phys = FlhPhysical::derive(&cfg.eval.technology, &cfg.eval.flh);
        let (before, _) =
            critical_delay(&flh.netlist, &library, &cfg.eval.timing, &flh.gated, &phys).unwrap();
        let result = optimize_fanout(&flh, &cfg).unwrap();
        let (after, _) = critical_delay(
            &result.netlist,
            &library,
            &cfg.eval.timing,
            &result.gated,
            &phys,
        )
        .unwrap();
        assert!(
            after <= before * (1.0 + 1e-9),
            "critical delay grew: {before} -> {after}"
        );
    }

    #[test]
    fn preserves_logic_function() {
        let n = hot_circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let result = optimize_fanout(&flh, &FanoutOptConfig::paper_default()).unwrap();
        assert!(result.optimized_ffs > 0);

        let mut rng = Rng::seed_from_u64(5);
        let mut sim_a = LogicSim::new(&flh.netlist).unwrap();
        let mut sim_b = LogicSim::new(&result.netlist).unwrap();
        // Same random initial state + vectors on both.
        for i in 0..flh.netlist.flip_flops().len() {
            let v = Logic::from_bool(rng.gen());
            sim_a.set_ff_by_index(i, v);
            sim_b.set_ff_by_index(i, v);
        }
        for _ in 0..30 {
            let vec: Vec<Logic> = (0..n.inputs().len())
                .map(|_| Logic::from_bool(rng.gen()))
                .collect();
            sim_a.apply_vector(&vec);
            sim_b.apply_vector(&vec);
            assert_eq!(sim_a.outputs(), sim_b.outputs());
            assert_eq!(sim_a.ff_state(), sim_b.ff_state());
        }
    }

    #[test]
    fn gated_set_contains_the_new_inverters() {
        let n = hot_circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let result = optimize_fanout(&flh, &FanoutOptConfig::paper_default()).unwrap();
        // Every gated cell must read at least one flip-flop.
        for &g in &result.gated {
            let reads_ff = result
                .netlist
                .cell(g)
                .fanin()
                .iter()
                .any(|&f| result.netlist.cell(f).kind().is_flip_flop());
            assert!(
                reads_ff,
                "{} is not a first-level gate",
                result.netlist.cell(g).name()
            );
        }
        assert!(result.inverters_added > 0);
    }

    #[test]
    fn threshold_disables_optimization() {
        let n = hot_circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let cfg = FanoutOptConfig {
            fanout_threshold: 1000,
            ..FanoutOptConfig::paper_default()
        };
        let result = optimize_fanout(&flh, &cfg).unwrap();
        assert_eq!(result.optimized_ffs, 0);
        assert_eq!(result.flg_before, result.flg_after);
        assert_eq!(result.inverters_added, 0);
        assert!((result.area_improvement_pct()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "applies to FLH netlists")]
    fn rejects_non_flh_input() {
        let n = hot_circuit();
        let es = apply_style(&n, DftStyle::EnhancedScan).unwrap();
        let _ = optimize_fanout(&es, &FanoutOptConfig::paper_default());
    }
}
