//! Stuck-at fault model: sites, enumeration and equivalence collapsing.

use flh_netlist::{analysis::FanoutMap, CellId, CellKind, Netlist};

/// The stuck polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StuckValue {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckValue {
    /// The boolean the line is stuck at.
    pub fn as_bool(self) -> bool {
        self == StuckValue::One
    }

    /// 64-bit mask of the stuck value.
    pub fn word(self) -> u64 {
        if self.as_bool() {
            !0
        } else {
            0
        }
    }

    /// Opposite polarity.
    pub fn opposite(self) -> Self {
        match self {
            StuckValue::Zero => StuckValue::One,
            StuckValue::One => StuckValue::Zero,
        }
    }
}

/// Where a fault lives: on a driver's output (stem) or on one fanout
/// branch (an input pin of one reading gate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The output line of a cell.
    Stem(CellId),
    /// The `pin`-th input of `gate` (only meaningful where the driving net
    /// has fanout > 1; otherwise the branch is equivalent to the stem).
    Branch {
        /// Reading gate.
        gate: CellId,
        /// Input pin index.
        pin: usize,
    },
}

/// A single stuck-at fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Location.
    pub site: FaultSite,
    /// Polarity.
    pub stuck: StuckValue,
}

impl Fault {
    /// Stem stuck-at fault constructor.
    pub fn stem(cell: CellId, stuck: StuckValue) -> Self {
        Fault {
            site: FaultSite::Stem(cell),
            stuck,
        }
    }

    /// Branch stuck-at fault constructor.
    pub fn branch(gate: CellId, pin: usize, stuck: StuckValue) -> Self {
        Fault {
            site: FaultSite::Branch { gate, pin },
            stuck,
        }
    }

    /// The cell whose value the fault perturbs first (the stem driver, or
    /// the branch's reading gate's fanin driver).
    pub fn driver(&self, netlist: &Netlist) -> CellId {
        match self.site {
            FaultSite::Stem(cell) => cell,
            FaultSite::Branch { gate, pin } => netlist.cell(gate).fanin()[pin],
        }
    }
}

/// Enumerates the uncollapsed single stuck-at fault universe:
///
/// * both polarities on every stem that drives at least one reader —
///   primary inputs, flip-flop outputs and combinational cells alike;
/// * both polarities on every fanout branch of nets with fanout > 1.
///
/// `Output` markers carry no faults of their own (their input line is the
/// driving stem / branch).
pub fn enumerate_stuck_faults(netlist: &Netlist) -> Vec<Fault> {
    let fanouts = FanoutMap::compute(netlist);
    let mut faults = Vec::new();
    for (id, cell) in netlist.iter() {
        if cell.kind() == CellKind::Output {
            continue;
        }
        let n_readers = fanouts.fanout_count(id);
        if n_readers == 0 {
            continue;
        }
        faults.push(Fault::stem(id, StuckValue::Zero));
        faults.push(Fault::stem(id, StuckValue::One));
        if n_readers > 1 {
            for &reader in fanouts.readers(id) {
                if netlist.cell(reader).kind() == CellKind::Output {
                    continue;
                }
                for (pin, &f) in netlist.cell(reader).fanin().iter().enumerate() {
                    if f == id {
                        faults.push(Fault::branch(reader, pin, StuckValue::Zero));
                        faults.push(Fault::branch(reader, pin, StuckValue::One));
                    }
                }
            }
        }
    }
    faults
}

/// Structural equivalence collapsing.
///
/// Classic local rules on simple gates with single-fanout inputs:
///
/// * `AND`/`NAND`: all input s-a-0 are equivalent to each other and to the
///   output s-a-(0 / 1); keep the output representative.
/// * `OR`/`NOR`: dually for input s-a-1.
/// * `INV`/`BUF`: both input faults are equivalent to output faults.
///
/// The rules are applied to stem faults whose driver's only reader is the
/// gate in question (branch faults on fanout stems are kept — they are not
/// equivalent). Collapsing only ever removes faults, never changes
/// coverage semantics: a test set detecting the collapsed set detects the
/// full set.
pub fn collapse_faults(netlist: &Netlist, faults: &[Fault]) -> Vec<Fault> {
    let fanouts = FanoutMap::compute(netlist);
    let mut keep: Vec<Fault> = Vec::with_capacity(faults.len());
    for &fault in faults {
        if let FaultSite::Stem(cell) = fault.site {
            // A stem with a single reader that is a collapsing gate: the
            // fault folds into the reader.
            if fanouts.fanout_count(cell) == 1 {
                let reader = fanouts.readers(cell)[0];
                let kind = netlist.cell(reader).kind();
                let collapsible = match kind {
                    CellKind::Inv | CellKind::Buf => true,
                    CellKind::And2
                    | CellKind::And3
                    | CellKind::And4
                    | CellKind::Nand2
                    | CellKind::Nand3
                    | CellKind::Nand4 => fault.stuck == StuckValue::Zero,
                    CellKind::Or2
                    | CellKind::Or3
                    | CellKind::Or4
                    | CellKind::Nor2
                    | CellKind::Nor3
                    | CellKind::Nor4 => fault.stuck == StuckValue::One,
                    _ => false,
                };
                if collapsible {
                    continue;
                }
            }
        }
        keep.push(fault);
    }
    keep
}

/// Builds a structurally faulty copy of `netlist`: the stuck-at fault is
/// baked in as a constant cell, so ordinary (fault-free) simulators — the
/// logic simulator, the BIST controller, the analog flow — can run the
/// defective circuit directly.
///
/// * stem faults redirect every reader of the site to a new constant;
/// * branch faults redirect only the faulted pin.
///
/// # Panics
///
/// Panics if a branch fault's pin does not read its recorded driver
/// (inconsistent fault descriptor).
pub fn inject_fault(netlist: &Netlist, fault: &Fault) -> Netlist {
    let mut out = netlist.clone();
    let kind = if fault.stuck.as_bool() {
        CellKind::Const1
    } else {
        CellKind::Const0
    };
    let name = out.fresh_name("fault_const_");
    let konst = out.add_cell(name, kind, Vec::new());
    match fault.site {
        FaultSite::Stem(cell) => {
            out.redirect_readers(cell, konst, &[]);
        }
        FaultSite::Branch { gate, pin } => {
            let driver = out.cell(gate).fanin()[pin];
            assert_eq!(
                driver,
                fault.driver(netlist),
                "branch fault pin does not read its driver"
            );
            out.set_fanin_pin(gate, pin, konst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::Netlist;

    fn fanout_circuit() -> Netlist {
        let mut n = Netlist::new("f");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
        let h1 = n.add_cell("h1", CellKind::Inv, vec![g]);
        let h2 = n.add_cell("h2", CellKind::Inv, vec![g]);
        n.add_output("y1", h1);
        n.add_output("y2", h2);
        n
    }

    #[test]
    fn enumeration_counts() {
        let n = fanout_circuit();
        let faults = enumerate_stuck_faults(&n);
        // Stems: a, b, g, h1, h2 => 10 faults.
        // Branches: g has fanout 2 (h1, h2) => 4 faults.
        assert_eq!(faults.len(), 14);
    }

    #[test]
    fn unread_cells_carry_no_faults() {
        let mut n = Netlist::new("u");
        let a = n.add_input("a");
        n.add_cell("dead", CellKind::Inv, vec![a]);
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        n.add_output("y", g);
        let faults = enumerate_stuck_faults(&n);
        // a (fanout 2 => stem + 2 branch pairs), g stem; dead drives nothing.
        let dead = n.find("dead").unwrap();
        assert!(faults
            .iter()
            .all(|f| !matches!(f.site, FaultSite::Stem(c) if c == dead)));
    }

    #[test]
    fn collapsing_shrinks_the_list() {
        let mut n = Netlist::new("c");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::And2, vec![a, b]);
        n.add_output("y", g);
        let faults = enumerate_stuck_faults(&n);
        let collapsed = collapse_faults(&n, &faults);
        assert!(collapsed.len() < faults.len());
        // Input s-a-0 on single-fanout stems into an AND collapse away.
        assert!(!collapsed.contains(&Fault::stem(a, StuckValue::Zero)));
        assert!(collapsed.contains(&Fault::stem(a, StuckValue::One)));
        assert!(collapsed.contains(&Fault::stem(g, StuckValue::Zero)));
    }

    #[test]
    fn branch_faults_survive_collapsing() {
        let n = fanout_circuit();
        let faults = enumerate_stuck_faults(&n);
        let collapsed = collapse_faults(&n, &faults);
        let h1 = n.find("h1").unwrap();
        assert!(collapsed.contains(&Fault::branch(h1, 0, StuckValue::Zero)));
    }

    #[test]
    fn fault_driver() {
        let n = fanout_circuit();
        let g = n.find("g").unwrap();
        let h1 = n.find("h1").unwrap();
        assert_eq!(Fault::stem(g, StuckValue::One).driver(&n), g);
        assert_eq!(Fault::branch(h1, 0, StuckValue::One).driver(&n), g);
    }

    #[test]
    fn injected_stem_fault_behaves_stuck() {
        let n = fanout_circuit();
        let g = n.find("g").unwrap();
        let faulty = inject_fault(&n, &Fault::stem(g, StuckValue::One));
        faulty.validate().unwrap();
        // Both inverters now read the constant.
        let h1 = faulty.find("h1").unwrap();
        let h2 = faulty.find("h2").unwrap();
        let k1 = faulty.cell(faulty.cell(h1).fanin()[0]).kind();
        let k2 = faulty.cell(faulty.cell(h2).fanin()[0]).kind();
        assert_eq!(k1, CellKind::Const1);
        assert_eq!(k2, CellKind::Const1);
    }

    #[test]
    fn injected_branch_fault_is_local() {
        let n = fanout_circuit();
        let g = n.find("g").unwrap();
        let h1 = n.find("h1").unwrap();
        let faulty = inject_fault(&n, &Fault::branch(h1, 0, StuckValue::Zero));
        faulty.validate().unwrap();
        let h1f = faulty.find("h1").unwrap();
        let h2f = faulty.find("h2").unwrap();
        assert_eq!(
            faulty.cell(faulty.cell(h1f).fanin()[0]).kind(),
            CellKind::Const0
        );
        // h2 still reads the real gate.
        assert_eq!(faulty.cell(h2f).fanin()[0], g);
    }

    #[test]
    fn stuck_value_helpers() {
        assert_eq!(StuckValue::One.word(), !0u64);
        assert_eq!(StuckValue::Zero.word(), 0);
        assert_eq!(StuckValue::One.opposite(), StuckValue::Zero);
        assert!(StuckValue::One.as_bool());
    }
}
