//! Test generation and fault simulation for the FLH reproduction.
//!
//! The paper's Section IV claims — FLH leaves fault models, test
//! generation and fault coverage untouched, while the *application style*
//! (enhanced-scan arbitrary two-pattern vs. broadside vs. skewed-load)
//! decides how much transition-fault coverage is reachable — need a real
//! test-generation substrate to be demonstrated. This crate provides it,
//! from scratch:
//!
//! * [`fault`] — stuck-at and transition-delay fault models over the
//!   combinational test view (primary inputs + flip-flop outputs in,
//!   primary outputs + flip-flop D pins out), with structural equivalence
//!   collapsing;
//! * [`tview`] — the combinational test view and 64-way parallel pattern
//!   evaluation with single-fault injection;
//! * [`podem`] — a PODEM implementation (objective / backtrace / imply with
//!   backtracking) for stuck-at faults, plus justification-only mode;
//! * [`replay`] — the shared deviation-replay engine: event-driven
//!   in-place faulty resimulation (per-level bucket queue, undo log,
//!   observed-driver miscompare, early exit on detection) that both the
//!   stuck-at and transition simulators run on;
//! * [`transition`] — two-pattern transition-fault ATPG built on PODEM
//!   (launch value justified by V1, detection by a stuck-at test as V2) and
//!   transition-fault simulation of pattern pairs;
//! * [`application`] — the three scan application styles: arbitrary
//!   two-pattern (enhanced scan / FLH), broadside (V2's state = circuit
//!   response to V1) and skewed-load (V2's state = 1-bit shift of V1's),
//!   used to reproduce the coverage comparison the paper motivates in its
//!   introduction.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod application;
pub mod broadside;
pub mod diagnose;
pub mod fault;
pub mod fsim;
pub mod path;
pub mod patterns_io;
pub mod podem;
pub mod prune;
pub mod replay;
pub mod transition;
pub mod tview;

pub use application::{
    campaign_grid, cycles_per_pattern, pairs_to_reach_coverage, random_transition_campaign,
    random_transition_campaign_pooled, transition_campaign_filtered, transition_campaign_with_view,
    ApplicationStyle, CampaignResult,
};
pub use broadside::{broadside_transition_atpg, BroadsideAtpgResult, BroadsidePattern};
pub use diagnose::{diagnose, faulty_responses, golden_responses, DiagnosisCandidate};
pub use fault::{
    collapse_faults, enumerate_stuck_faults, inject_fault, Fault, FaultSite, StuckValue,
};
pub use fsim::{
    order_stuck_faults, stuck_coverage, stuck_coverage_parallel, stuck_coverage_partitioned,
    stuck_detects_reference, FaultStats, StuckSimulator, PATTERN_BLOCK,
};
pub use path::{
    generate_path_test, generate_robust_path_test, longest_paths, longest_sensitizable_path,
    path_delay_atpg, verify_non_robust, verify_robust, PathDelayFault, PathDelayReport,
    PathTestOutcome, StructuralPath,
};
pub use patterns_io::{parse_patterns, read_patterns_file, write_patterns};
pub use podem::{Podem, PodemConfig, TestCube};
pub use prune::{
    order_stuck_faults_pruned, order_transition_faults_pruned, stuck_coverage_pruned, PruneOutcome,
    StaticFilter,
};
pub use replay::DeviationReplay;
pub use transition::{
    collapse_transition_faults, compact_transition_patterns, enumerate_transition_faults,
    order_transition_faults, simulate_transition_patterns, simulate_transition_patterns_dropping,
    simulate_transition_patterns_partitioned, transition_atpg, transition_atpg_ndetect,
    transition_atpg_with_filter, transition_collapse_justifier, transition_detects_reference,
    NDetectResult, TransitionAtpgResult, TransitionFault, TransitionKind, TransitionPattern,
    TransitionSimulator,
};
pub use tview::TestView;
