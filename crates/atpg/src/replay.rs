//! The shared deviation-replay engine.
//!
//! Every fault simulator in this crate answers the same question: *given
//! the good machine's packed lane values, how does forcing one cell change
//! the observed outputs?* [`DeviationReplay`] owns the machinery that
//! answers it without ever cloning the value array or walking a static
//! fanout cone:
//!
//! * the deviation is propagated **event-driven** — readers of changed
//!   cells are queued into per-level buckets (deduplicated by a per-replay
//!   generation stamp) and drained in level order, so a replay touches only
//!   the cells the deviation actually reaches;
//! * every write is recorded in an **undo log** and reverted before the
//!   call returns, so the caller's good-machine buffer survives intact;
//! * detection scans **changed observation drivers only** — the caller's
//!   `observed` flags gate which writes feed the miscompare word — and the
//!   replay **stops as soon as an active lane miscompares** (pass
//!   `stop_lanes = W::bot()` to force full propagation when an exact
//!   per-lane count is needed, as N-detect counting is).
//!
//! The engine is generic over [`PatternWord`], so one undo log / bucket /
//! miscompare implementation serves both widths: `u64` (64 pattern lanes,
//! the historical engine, kept as the equivalence reference) and
//! [`Packed256`] (256 lanes — each fault replays four batches' worth of
//! patterns per pass, and because the four deviation frontiers overlap
//! heavily, a superword replay costs far less than four word replays).
//!
//! [`crate::fsim::StuckSimulator`] replays the single-frame faulty machine
//! on it; [`crate::transition::TransitionSimulator`] replays the V2 frame
//! of a two-pattern test under the fault's stuck equivalent. Both engines
//! are bit-identical to their brute-force references
//! ([`crate::fsim::stuck_detects_reference`],
//! [`crate::transition::transition_detects_reference`]).

use std::sync::Arc;

use flh_netlist::{CompiledCircuit, PatternWord, Program};

#[cfg(doc)]
use flh_netlist::Packed256;

/// Event-driven in-place deviation replay over a [`CompiledCircuit`], at
/// the lane width of the pattern word `W`.
///
/// The engine is scratch state (undo log, generation stamps, level
/// buckets) plus a shared handle on the circuit's lowered [`Program`]:
/// each replayed cell is re-evaluated through the same fused opcode table
/// the settle kernels execute ([`Program::eval_cell`]), so logic sim,
/// stuck-at replay and transition replay share one gate-evaluation engine.
/// The circuit itself is passed to each [`DeviationReplay::replay`] call;
/// one instance serves any number of replays against the same compiled
/// circuit.
#[derive(Clone, Debug)]
pub struct DeviationReplay<W: PatternWord = u64> {
    /// The lowered opcode stream shared with the settle kernels.
    program: Arc<Program>,
    /// Undo log of the current replay's writes, split into parallel
    /// arrays: ids and good values pack densely instead of padding each
    /// `(u32, W)` tuple to the lane word's alignment.
    undo_ids: Vec<u32>,
    undo_vals: Vec<W>,
    /// Per-cell enqueue stamp: a cell joins the replay queue at most once
    /// per replay (stamp equals the replay's generation).
    marks: Vec<u64>,
    gen: u64,
    /// Replay queue, one bucket per logic level (index 0 unused — sources
    /// are never re-evaluated).
    buckets: Vec<Vec<u32>>,
    /// Scratch register file for multi-instruction chains.
    scratch: Vec<W>,
}

impl<W: PatternWord> DeviationReplay<W> {
    /// Engine sized for `compiled`, evaluating cells through its lowered
    /// `program`.
    ///
    /// # Panics
    ///
    /// Panics if `program` was not lowered from `compiled`.
    pub fn new(compiled: &CompiledCircuit, program: Arc<Program>) -> Self {
        assert_eq!(
            program.cell_words(),
            compiled.cell_count(),
            "program does not match the circuit"
        );
        let scratch = vec![W::default(); program.scratch_words()];
        DeviationReplay {
            program,
            undo_ids: Vec::new(),
            undo_vals: Vec::new(),
            marks: vec![0; compiled.cell_count()],
            gen: 0,
            buckets: vec![Vec::new(); compiled.levels() + 1],
            scratch,
        }
    }

    /// Forces `values[seed] = forced`, propagates the deviation
    /// event-driven through `compiled`, and returns the miscompare word
    /// accumulated over changed cells flagged in `observed`. `values` is
    /// restored to its entry state before returning.
    ///
    /// Replay aborts early once `miscompare` intersects `stop_lanes` — the
    /// caller passes its activation-lane word so a detected fault never
    /// pays for the rest of its deviation. Pass `stop_lanes = W::bot()` to
    /// propagate to quiescence and get the exact per-lane miscompare word.
    pub fn replay(
        &mut self,
        compiled: &CompiledCircuit,
        observed: &[bool],
        values: &mut [W],
        seed: u32,
        forced: W,
        stop_lanes: W,
    ) -> W {
        self.undo_ids.clear();
        self.undo_vals.clear();
        self.gen += 1;
        let gen = self.gen;
        let mut miscompare = W::bot();
        // Deterministic work counters, accumulated as plain locals and
        // flushed once at the end — the disabled cost of instrumentation
        // stays a branch on a static (`flh_obs::enabled`).
        let mut ev_events = 0u64;
        let mut ev_dedup = 0u64;
        let mut early_exit = false;

        let old = values[seed as usize];
        if old == forced {
            if flh_obs::enabled() {
                flush_replay_metrics::<W>(0, 0, 0, false, 0);
            }
            return W::bot(); // the deviation never exists in this batch
        }
        self.undo_ids.push(seed);
        self.undo_vals.push(old);
        values[seed as usize] = forced;
        if observed[seed as usize] {
            miscompare = miscompare.or(old.xor(forced));
        }

        if !miscompare.and(stop_lanes).any() {
            // Queue the seed's readers, then drain the buckets in level
            // order. A reader always sits at a strictly higher level than
            // its driver, so the current bucket never grows while it is
            // being drained. Level-0 readers are flip-flops (sequential
            // boundary: D observed, Q untouched).
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            for &r in compiled.readers(seed) {
                let lvl = compiled.level_of(r) as usize;
                if lvl == 0 {
                    continue;
                }
                if self.marks[r as usize] == gen {
                    ev_dedup += 1;
                    continue;
                }
                self.marks[r as usize] = gen;
                self.buckets[lvl].push(r);
                lo = lo.min(lvl);
                hi = hi.max(lvl);
            }
            let mut lvl = lo;
            'replay: while lvl <= hi {
                let bucket = std::mem::take(&mut self.buckets[lvl]);
                for &id in &bucket {
                    ev_events += 1;
                    let old = values[id as usize];
                    let new = self.program.eval_cell(id, values, &mut self.scratch);
                    if old == new {
                        continue; // deviation masked at this cell
                    }
                    self.undo_ids.push(id);
                    self.undo_vals.push(old);
                    values[id as usize] = new;
                    if observed[id as usize] {
                        miscompare = miscompare.or(old.xor(new));
                        if miscompare.and(stop_lanes).any() {
                            self.buckets[lvl] = bucket;
                            early_exit = true;
                            break 'replay; // detected: the rest is moot
                        }
                    }
                    for &r in compiled.readers(id) {
                        let rl = compiled.level_of(r) as usize;
                        if rl == 0 {
                            continue;
                        }
                        if self.marks[r as usize] == gen {
                            ev_dedup += 1;
                            continue;
                        }
                        self.marks[r as usize] = gen;
                        self.buckets[rl].push(r);
                        hi = hi.max(rl);
                    }
                }
                self.buckets[lvl] = bucket;
                self.buckets[lvl].clear();
                lvl += 1;
            }
            // An early exit leaves queued entries behind; drop them so the
            // buckets are empty for the next replay.
            if lvl <= hi {
                for b in &mut self.buckets[lvl..=hi] {
                    b.clear();
                }
            }
        }

        // Restore the good machine.
        for (&id, &old) in self.undo_ids.iter().zip(&self.undo_vals) {
            values[id as usize] = old;
        }

        if flh_obs::enabled() {
            flush_replay_metrics::<W>(
                ev_events,
                ev_dedup,
                self.undo_ids.len() as u64,
                early_exit,
                ev_events,
            );
        }
        miscompare
    }
}

/// Flushes one replay call's deterministic metrics. Replay work is a
/// per-fault quantity: every counter flushed here is invariant under
/// fault-list sharding (a shard replays the full batch stream, and a
/// fault's deviation depends only on the fault and the batch), so these
/// stay deterministic at any pool width. `lane_evals` is normalized by the
/// engine's lane width so 64- and 256-lane campaigns stay comparable.
#[inline]
fn flush_replay_metrics<W: PatternWord>(
    ev_events: u64,
    ev_dedup: u64,
    undo_writes: u64,
    early_exit: bool,
    hist_events: u64,
) {
    use flh_obs::{Counter, Hist};
    flh_obs::add(Counter::ReplayCalls, 1);
    flh_obs::add(Counter::ReplayEvents, ev_events);
    flh_obs::add(Counter::ReplayDedupHits, ev_dedup);
    flh_obs::add(Counter::ReplayEarlyExits, u64::from(early_exit));
    flh_obs::add(Counter::ReplayUndoWrites, undo_writes);
    flh_obs::add(Counter::ReplayLaneEvals, ev_events * W::LANES as u64);
    if W::LANES > 64 {
        flh_obs::add(Counter::ReplaySuperwordCalls, 1);
    }
    flh_obs::record(Hist::ReplayUndoDepth, undo_writes);
    flh_obs::record(Hist::ReplayEventsPerCall, hist_events);
    flh_obs::record(Hist::ReplayLanesPerCall, W::LANES as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tview::TestView;
    use flh_netlist::{generate_circuit, GeneratorConfig, LaneWord, Netlist, Packed256};
    use flh_rng::Rng;

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "replay".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 6,
            gates: 55,
            logic_depth: 6,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 91,
        })
        .expect("generates")
    }

    /// Forcing a cell and replaying must match a full re-evaluation with
    /// the cell pinned, for every cell and both polarities.
    #[test]
    fn replay_matches_full_reevaluation() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let compiled = view.compiled();
        let mut rng = Rng::seed_from_u64(5);
        let words: Vec<u64> = (0..view.assignable().len()).map(|_| rng.gen()).collect();
        let good = view.eval64(&words, None);
        let mut values = good.clone();
        let mut engine: DeviationReplay = DeviationReplay::new(compiled, view.program_arc());
        for seed in 0..compiled.cell_count() as u32 {
            if compiled.kind(seed) == flh_netlist::CellKind::Output {
                continue;
            }
            for forced in [0u64, !0u64] {
                let mis = engine.replay(
                    compiled,
                    view.observed_drivers(),
                    &mut values,
                    seed,
                    forced,
                    0,
                );
                assert_eq!(values, good, "values not restored for seed {seed}");
                // Reference: force the seed by hand on a scratch copy and
                // re-evaluate everything in level order.
                let mut reference = good.clone();
                reference[seed as usize] = forced;
                let mut inputs: Vec<u64> = Vec::new();
                for &id in compiled.order() {
                    if id == seed {
                        continue;
                    }
                    inputs.clear();
                    inputs.extend(compiled.fanin(id).iter().map(|&x| reference[x as usize]));
                    reference[id as usize] = compiled.kind(id).eval64(&inputs);
                }
                let mut expected = 0u64;
                for (id, (&g, &f)) in good.iter().zip(&reference).enumerate() {
                    if view.observed_drivers()[id] {
                        expected |= g ^ f;
                    }
                }
                assert_eq!(mis, expected, "seed {seed} forced {forced:#x}");
            }
        }
    }

    /// With a stop word, the replay may return a partial miscompare — but
    /// any bit it reports in the stop lanes must be a true miscompare.
    #[test]
    fn early_exit_is_sound_and_restores() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let compiled = view.compiled();
        let mut rng = Rng::seed_from_u64(6);
        let words: Vec<u64> = (0..view.assignable().len()).map(|_| rng.gen()).collect();
        let good = view.eval64(&words, None);
        let mut values = good.clone();
        let mut engine: DeviationReplay = DeviationReplay::new(compiled, view.program_arc());
        for seed in 0..compiled.cell_count() as u32 {
            if compiled.kind(seed) == flh_netlist::CellKind::Output {
                continue;
            }
            let full = engine.replay(compiled, view.observed_drivers(), &mut values, seed, 0, 0);
            let stopped =
                engine.replay(compiled, view.observed_drivers(), &mut values, seed, 0, !0);
            assert_eq!(values, good, "values not restored for seed {seed}");
            // Early exit never invents a miscompare bit...
            assert_eq!(stopped & !full, 0, "seed {seed}");
            // ...and agrees with the full word on whether anything fires.
            assert_eq!(stopped != 0, full != 0, "seed {seed}");
        }
    }

    /// A 256-lane replay is the four 64-lane replays of its limbs, lane for
    /// lane — the tentpole invariant, checked here per seed cell on top of
    /// the cross-profile suite in `replay_superword_equivalence.rs`.
    #[test]
    fn superword_replay_matches_four_word_replays() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let compiled = view.compiled();
        let mut rng = Rng::seed_from_u64(17);
        let limbs: Vec<[u64; 4]> = (0..view.assignable().len())
            .map(|_| [rng.gen(), rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let good64: Vec<Vec<u64>> = (0..4)
            .map(|l| {
                let words: Vec<u64> = limbs.iter().map(|w| w[l]).collect();
                view.eval64(&words, None)
            })
            .collect();
        let good256: Vec<Packed256> = (0..compiled.cell_count())
            .map(|i| {
                Packed256::from_limbs([good64[0][i], good64[1][i], good64[2][i], good64[3][i]])
            })
            .collect();

        let mut word_engine: DeviationReplay = DeviationReplay::new(compiled, view.program_arc());
        let mut super_engine: DeviationReplay<Packed256> =
            DeviationReplay::new(compiled, view.program_arc());
        let mut values256 = good256.clone();
        let mut values64: Vec<Vec<u64>> = good64.clone();
        for seed in 0..compiled.cell_count() as u32 {
            if compiled.kind(seed) == flh_netlist::CellKind::Output {
                continue;
            }
            for forced in [Packed256::bot(), Packed256::top()] {
                let mis256 = super_engine.replay(
                    compiled,
                    view.observed_drivers(),
                    &mut values256,
                    seed,
                    forced,
                    Packed256::bot(),
                );
                assert_eq!(values256, good256, "restore for seed {seed}");
                for l in 0..4 {
                    let mis64 = word_engine.replay(
                        compiled,
                        view.observed_drivers(),
                        &mut values64[l],
                        seed,
                        forced.limb(l),
                        0,
                    );
                    assert_eq!(mis256.limb(l), mis64, "seed {seed} limb {l}");
                }
            }
        }
    }

    /// Early exit and restore behave at 256-lane width exactly as they do
    /// at 64: stop-lane hits are sound and the value file survives.
    #[test]
    fn superword_early_exit_is_sound_and_restores() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let compiled = view.compiled();
        let mut rng = Rng::seed_from_u64(23);
        let limbs: Vec<[u64; 4]> = (0..view.assignable().len())
            .map(|_| [rng.gen(), rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let good64: Vec<Vec<u64>> = (0..4)
            .map(|l| {
                let words: Vec<u64> = limbs.iter().map(|w| w[l]).collect();
                view.eval64(&words, None)
            })
            .collect();
        let good: Vec<Packed256> = (0..compiled.cell_count())
            .map(|i| {
                Packed256::from_limbs([good64[0][i], good64[1][i], good64[2][i], good64[3][i]])
            })
            .collect();
        let mut values = good.clone();
        let mut engine: DeviationReplay<Packed256> =
            DeviationReplay::new(compiled, view.program_arc());
        for seed in 0..compiled.cell_count() as u32 {
            if compiled.kind(seed) == flh_netlist::CellKind::Output {
                continue;
            }
            let full = engine.replay(
                compiled,
                view.observed_drivers(),
                &mut values,
                seed,
                Packed256::bot(),
                Packed256::bot(),
            );
            let stopped = engine.replay(
                compiled,
                view.observed_drivers(),
                &mut values,
                seed,
                Packed256::bot(),
                Packed256::top(),
            );
            assert_eq!(values, good, "values not restored for seed {seed}");
            assert!(!stopped.and(full.not()).any(), "seed {seed}");
            assert_eq!(stopped.any(), full.any(), "seed {seed}");
        }
    }
}
