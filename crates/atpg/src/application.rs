//! Two-pattern application styles and coverage campaigns.
//!
//! The paper's introduction motivates FLH by the weaknesses of the two
//! DFT-free application styles:
//!
//! * **broadside** (launch-on-capture): V2's state part is the circuit's
//!   own response to V1 — "the broadside case can suffer from poor fault
//!   coverage";
//! * **skewed-load** (launch-on-shift): V2's state part is a 1-bit shift of
//!   V1's — "since the second pattern is highly correlated to the first
//!   one, the test generation for high fault coverage can be difficult";
//! * **arbitrary two-pattern** (enhanced scan, or FLH at a fraction of the
//!   cost): V1 and V2 are independent — best possible coverage.
//!
//! [`random_transition_campaign`] quantifies this with seeded random
//! pattern-pair campaigns under each constraint.

use flh_exec::{DropMask, ThreadPool};
use flh_netlist::{LaneWord, Netlist, Packed256, PatternWord};
use flh_rng::Rng;

use crate::fsim::{MIN_FAULTS_PER_SHARD, PATTERN_BLOCK};
use crate::transition::{
    enumerate_transition_faults, order_transition_faults, TransitionSimulator,
};
use crate::tview::{Observation, TestView};

/// How the second pattern's state part is obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApplicationStyle {
    /// Enhanced-scan / FLH: V1 and V2 fully independent.
    ArbitraryTwoPattern,
    /// Broadside: V2's state = the flip-flop capture of the response to V1.
    Broadside,
    /// Skewed-load: V2's state = V1's state shifted by one chain position.
    SkewedLoad,
}

impl std::fmt::Display for ApplicationStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ApplicationStyle::ArbitraryTwoPattern => "arbitrary two-pattern",
            ApplicationStyle::Broadside => "broadside",
            ApplicationStyle::SkewedLoad => "skewed-load",
        })
    }
}

/// Outcome of a random campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignResult {
    /// Style used.
    pub style: ApplicationStyle,
    /// Total transition faults.
    pub total_faults: usize,
    /// Faults detected.
    pub detected: usize,
    /// Pattern pairs applied.
    pub pairs: usize,
}

impl CampaignResult {
    /// Coverage in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.total_faults == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total_faults as f64
        }
    }
}

/// Runs a seeded random transition-fault campaign of `pairs` pattern pairs
/// under the given application style.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn random_transition_campaign(
    netlist: &Netlist,
    style: ApplicationStyle,
    pairs: usize,
    seed: u64,
) -> flh_netlist::Result<CampaignResult> {
    random_transition_campaign_pooled(netlist, style, pairs, seed, &ThreadPool::serial())
}

/// Pooled [`random_transition_campaign`]: the pair stream is generated up
/// front (consuming the RNG in exactly the order the streaming serial path
/// does — the stream never depends on detection), then the fault list is
/// sharded over the pool and every shard replays the full stream on its
/// own simulator. Detection counts are summed in fault-id shard order, so
/// the result is bit-identical at any pool size.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn random_transition_campaign_pooled(
    netlist: &Netlist,
    style: ApplicationStyle,
    pairs: usize,
    seed: u64,
    pool: &ThreadPool,
) -> flh_netlist::Result<CampaignResult> {
    let view = TestView::new(netlist)?;
    let faults = enumerate_transition_faults(netlist);
    Ok(transition_campaign_with_view(
        &view, &faults, style, pairs, seed, pool,
    ))
}

/// Campaign core over a prebuilt [`TestView`] and fault list — the entry
/// point for callers that cache compiled circuits (the `flh-serve`
/// `JobEngine`): a repeat campaign pays neither parse, compile nor fault
/// enumeration. Semantics and results are exactly those of
/// [`random_transition_campaign_pooled`] on the same netlist.
pub fn transition_campaign_with_view(
    view: &TestView<'_>,
    faults: &[crate::transition::TransitionFault],
    style: ApplicationStyle,
    pairs: usize,
    seed: u64,
    pool: &ThreadPool,
) -> CampaignResult {
    let filter = crate::prune::StaticFilter::from_view(view);
    transition_campaign_filtered(view, faults, style, pairs, seed, pool, Some(&filter))
}

/// [`transition_campaign_with_view`] with an explicit prune filter (`None`
/// disables pruning). Statically untestable faults are dropped before
/// sharding — the replay engine never touches them — while `total_faults`
/// still counts the full universe. On a sound filter the pruned faults are
/// exactly faults no pattern pair ever detects, so the aggregate counts
/// are identical in both modes; the bench suite asserts that equality.
#[allow(clippy::too_many_arguments)]
pub fn transition_campaign_filtered(
    view: &TestView<'_>,
    faults: &[crate::transition::TransitionFault],
    style: ApplicationStyle,
    pairs: usize,
    seed: u64,
    pool: &ThreadPool,
    filter: Option<&crate::prune::StaticFilter>,
) -> CampaignResult {
    let mut rng = Rng::seed_from_u64(seed);
    let n = view.assignable().len();

    // Assemble 256-lane pair blocks from four *sequential* 64-lane fills:
    // sub-batch `j` lands in limb `j`, so the RNG is consumed in exactly
    // the order the streaming 64-lane path ([`campaign_impl`]) consumes it
    // and the generated pair stream is unchanged — only its grouping into
    // simulation blocks widened. A final partial block keeps only the
    // lanes that hold real pairs in its mask.
    let mut batches: Vec<(Vec<Packed256>, Vec<Packed256>, Packed256)> =
        Vec::with_capacity(pairs.div_ceil(PATTERN_BLOCK));
    let mut remaining = pairs;
    while remaining > 0 {
        let lanes = remaining.min(PATTERN_BLOCK);
        let mut v1 = vec![Packed256::bot(); n];
        let mut v2 = vec![Packed256::bot(); n];
        let mut sub1 = vec![0u64; n];
        let mut sub2 = vec![0u64; n];
        for limb in 0..lanes.div_ceil(64) {
            fill_pair_batch(view, style, &mut rng, &mut sub1, &mut sub2);
            for i in 0..n {
                v1[i].0[limb] = sub1[i];
                v2[i].0[limb] = sub2[i];
            }
        }
        batches.push((v1, v2, Packed256::mask_lanes(lanes)));
        remaining -= lanes;
    }

    // Static prune, then static fault ordering: replay seeds sorted
    // level-major walk the compiled program front-to-back. The campaign
    // result is aggregate counts, so neither the permutation nor the
    // removal of provably undetectable faults is visible to callers.
    let ordered = match filter {
        Some(f) => crate::prune::order_transition_faults_pruned(f, view.compiled(), faults).0,
        None => order_transition_faults(view.compiled(), faults),
    };

    // Shards never go below the minimum granularity (per-shard setup —
    // simulator, good-machine evaluations per batch — must amortize), and
    // each shard drops detected faults across its whole batch stream: a
    // fault is replayed at most until its first detecting batch.
    let mut drops = DropMask::new(ordered.len());
    let parts = pool.run_partitioned_min(ordered.len(), MIN_FAULTS_PER_SHARD, |range| {
        let shard = &ordered[range.clone()];
        let mut sim = TransitionSimulator::new(view);
        let mut detected = drops.shard(range);
        for (v1, v2, mask) in &batches {
            sim.run_batch(v1, v2, *mask, shard, &mut detected);
        }
        detected
    });
    for (range, flags) in parts {
        drops.merge_shard(range, &flags);
    }

    CampaignResult {
        style,
        total_faults: faults.len(),
        detected: drops.dropped(),
        pairs,
    }
}

/// Runs the full circuit × style campaign grid over a pool, one cell per
/// `(netlist, style)` pair, each cell a self-contained serial
/// [`random_transition_campaign`] with the same `pairs` and `seed`. Rows
/// follow `netlists` order, columns `styles` order — identical to calling
/// the serial campaign in two nested loops, at any pool size.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn campaign_grid(
    netlists: &[Netlist],
    styles: &[ApplicationStyle],
    pairs: usize,
    seed: u64,
    pool: &ThreadPool,
) -> flh_netlist::Result<Vec<Vec<CampaignResult>>> {
    let cells = netlists.len() * styles.len();
    let results = pool.run(cells, |i| {
        let (ci, si) = (i / styles.len(), i % styles.len());
        random_transition_campaign(&netlists[ci], styles[si], pairs, seed)
    });
    let mut rows = Vec::with_capacity(netlists.len());
    let mut it = results.into_iter();
    for _ in netlists {
        let mut row = Vec::with_capacity(styles.len());
        for _ in styles {
            row.push(it.next().expect("one result per cell")?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Runs batches of random pairs until `target_pct` coverage is reached or
/// `max_pairs` are spent. Returns the pair count and coverage at the stop
/// point — the raw material for cycles-to-coverage (test time)
/// comparisons across application styles.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn pairs_to_reach_coverage(
    netlist: &Netlist,
    style: ApplicationStyle,
    target_pct: f64,
    max_pairs: usize,
    seed: u64,
) -> flh_netlist::Result<CampaignResult> {
    campaign_impl(netlist, style, max_pairs, seed, |_, detected, total| {
        100.0 * detected as f64 / total.max(1) as f64 >= target_pct
    })
}

/// Fills one 64-lane batch of random (V1, V2) words under `style`. RNG
/// consumption order is fixed — all V1 words, V2 primary-input words, then
/// the style-specific state fill — and is the determinism anchor shared by
/// the streaming ([`campaign_impl`]) and precomputed
/// ([`random_transition_campaign_pooled`]) pair generators.
fn fill_pair_batch(
    view: &TestView<'_>,
    style: ApplicationStyle,
    rng: &mut Rng,
    v1: &mut [u64],
    v2: &mut [u64],
) {
    let n_pi = view.primary_input_count();
    let n_ff = v1.len() - n_pi;
    for w in v1.iter_mut() {
        *w = rng.gen();
    }
    // V2 primary inputs are always free.
    for w in v2.iter_mut().take(n_pi) {
        *w = rng.gen();
    }
    match style {
        ApplicationStyle::ArbitraryTwoPattern => {
            for w in v2.iter_mut().skip(n_pi) {
                *w = rng.gen();
            }
        }
        ApplicationStyle::Broadside => {
            // State part of V2 = the flip-flop D values under V1.
            let good1 = view.eval64(v1, None);
            let mut ff_idx = 0;
            for obs in view.observations() {
                if let Observation::FfD(ff) = obs {
                    let d = view.netlist().cell(*ff).fanin()[0];
                    v2[n_pi + ff_idx] = good1[d.index()];
                    ff_idx += 1;
                }
            }
            debug_assert_eq!(ff_idx, n_ff);
        }
        ApplicationStyle::SkewedLoad => {
            // State part of V2 = V1's state shifted one position down
            // the chain (position i takes position i-1; position 0
            // takes a random scan-in bit).
            for i in (1..n_ff).rev() {
                v2[n_pi + i] = v1[n_pi + i - 1];
            }
            if n_ff > 0 {
                v2[n_pi] = rng.gen();
            }
        }
    }
}

/// Streaming campaign core: generates and simulates one batch at a time so
/// `stop` can end the run on cumulative coverage — the path
/// [`pairs_to_reach_coverage`] needs, which cannot be fault-partitioned
/// without changing where the early stop lands.
fn campaign_impl(
    netlist: &Netlist,
    style: ApplicationStyle,
    pairs: usize,
    seed: u64,
    mut stop: impl FnMut(usize, usize, usize) -> bool,
) -> flh_netlist::Result<CampaignResult> {
    let view = TestView::new(netlist)?;
    let faults = enumerate_transition_faults(netlist);
    let mut sim = TransitionSimulator::new(&view);
    let mut detected = vec![false; faults.len()];
    let mut rng = Rng::seed_from_u64(seed);

    let n = view.assignable().len();

    let mut applied = 0usize;
    let mut detected_count = 0usize;
    let mut remaining = pairs;
    let mut sub1 = vec![0u64; n];
    let mut sub2 = vec![0u64; n];
    while remaining > 0 {
        // One 64-lane fill per step, widened into the low limb: the stop
        // predicate still sees coverage every 64 pairs, so early-stop
        // points (and the RNG stream) are identical to the historical
        // 64-lane streaming path.
        let lanes = remaining.min(64);
        fill_pair_batch(&view, style, &mut rng, &mut sub1, &mut sub2);
        let v1: Vec<Packed256> = sub1.iter().map(|&w| Packed256::from_word(w)).collect();
        let v2: Vec<Packed256> = sub2.iter().map(|&w| Packed256::from_word(w)).collect();
        let mask = Packed256::mask_lanes(lanes);
        detected_count += sim.run_batch(&v1, &v2, mask, &faults, &mut detected);
        remaining -= lanes;
        applied += lanes;
        if stop(applied, detected_count, faults.len()) {
            break;
        }
    }

    Ok(CampaignResult {
        style,
        total_faults: faults.len(),
        detected: detected_count,
        pairs: applied,
    })
}

/// Tester clock cycles to apply one two-pattern test under a style, with a
/// `load_cycles`-deep (possibly multi-chain) scan load:
///
/// * arbitrary (enhanced scan / FLH): scan V1, apply, scan V2 (overlapped
///   with the previous unload), launch + capture → `2·load + 2`;
/// * broadside: scan V1, launch clock, capture clock → `load + 2`;
/// * skewed-load: the last shift is the launch → `load + 1`.
pub fn cycles_per_pattern(style: ApplicationStyle, load_cycles: usize) -> usize {
    match style {
        ApplicationStyle::ArbitraryTwoPattern => 2 * load_cycles + 2,
        ApplicationStyle::Broadside => load_cycles + 2,
        ApplicationStyle::SkewedLoad => load_cycles + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "camp".into(),
            primary_inputs: 6,
            primary_outputs: 4,
            flip_flops: 10,
            gates: 90,
            logic_depth: 8,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 55,
        })
        .unwrap()
    }

    #[test]
    fn campaigns_are_deterministic() {
        let n = circuit();
        let a = random_transition_campaign(&n, ApplicationStyle::Broadside, 200, 7).unwrap();
        let b = random_transition_campaign(&n, ApplicationStyle::Broadside, 200, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn arbitrary_pairs_beat_broadside() {
        let n = circuit();
        let arb =
            random_transition_campaign(&n, ApplicationStyle::ArbitraryTwoPattern, 500, 11).unwrap();
        let brd = random_transition_campaign(&n, ApplicationStyle::Broadside, 500, 11).unwrap();
        assert!(
            arb.coverage_pct() > brd.coverage_pct(),
            "arbitrary {} <= broadside {}",
            arb.coverage_pct(),
            brd.coverage_pct()
        );
    }

    #[test]
    fn arbitrary_pairs_beat_skewed_load() {
        let n = circuit();
        let arb = random_transition_campaign(&n, ApplicationStyle::ArbitraryTwoPattern, 2000, 11)
            .unwrap();
        let skw = random_transition_campaign(&n, ApplicationStyle::SkewedLoad, 2000, 11).unwrap();
        assert!(
            arb.coverage_pct() >= skw.coverage_pct(),
            "arbitrary {} < skewed {}",
            arb.coverage_pct(),
            skw.coverage_pct()
        );
    }

    #[test]
    fn more_pairs_more_coverage() {
        let n = circuit();
        let few =
            random_transition_campaign(&n, ApplicationStyle::ArbitraryTwoPattern, 64, 3).unwrap();
        let many =
            random_transition_campaign(&n, ApplicationStyle::ArbitraryTwoPattern, 1000, 3).unwrap();
        assert!(many.detected >= few.detected);
        assert!(many.coverage_pct() > 50.0);
    }

    #[test]
    fn pooled_campaign_matches_serial_at_any_width() {
        let n = circuit();
        for style in [
            ApplicationStyle::ArbitraryTwoPattern,
            ApplicationStyle::Broadside,
            ApplicationStyle::SkewedLoad,
        ] {
            let serial = random_transition_campaign(&n, style, 300, 13).unwrap();
            for workers in [2, 4, 8] {
                let pooled = random_transition_campaign_pooled(
                    &n,
                    style,
                    300,
                    13,
                    &ThreadPool::new(workers),
                )
                .unwrap();
                assert_eq!(pooled, serial, "{style}, workers = {workers}");
            }
        }
    }

    #[test]
    fn campaign_grid_matches_nested_loops() {
        let a = circuit();
        let b = generate_circuit(&GeneratorConfig {
            name: "camp2".into(),
            primary_inputs: 5,
            primary_outputs: 3,
            flip_flops: 8,
            gates: 70,
            logic_depth: 7,
            avg_ff_fanout: 2.1,
            unique_flg_ratio: 1.7,
            hot_ff_fanout: None,
            seed: 56,
        })
        .unwrap();
        let netlists = [a, b];
        let styles = [
            ApplicationStyle::ArbitraryTwoPattern,
            ApplicationStyle::SkewedLoad,
        ];
        let expected: Vec<Vec<CampaignResult>> = netlists
            .iter()
            .map(|n| {
                styles
                    .iter()
                    .map(|&s| random_transition_campaign(n, s, 128, 5).unwrap())
                    .collect()
            })
            .collect();
        for workers in [1, 3] {
            let grid =
                campaign_grid(&netlists, &styles, 128, 5, &ThreadPool::new(workers)).unwrap();
            assert_eq!(grid, expected, "workers = {workers}");
        }
    }

    #[test]
    fn style_display() {
        assert_eq!(ApplicationStyle::Broadside.to_string(), "broadside");
    }

    #[test]
    fn pairs_to_reach_stops_early() {
        let n = circuit();
        let full = random_transition_campaign(&n, ApplicationStyle::ArbitraryTwoPattern, 2000, 21)
            .unwrap();
        let target = 0.8 * full.coverage_pct();
        let partial =
            pairs_to_reach_coverage(&n, ApplicationStyle::ArbitraryTwoPattern, target, 2000, 21)
                .unwrap();
        assert!(partial.coverage_pct() >= target);
        assert!(
            partial.pairs < full.pairs,
            "{} !< {}",
            partial.pairs,
            full.pairs
        );
        // Identical seed => the partial run is a prefix of the full run.
        assert!(partial.detected <= full.detected);
    }

    #[test]
    fn unreachable_target_spends_the_budget() {
        let n = circuit();
        let r = pairs_to_reach_coverage(&n, ApplicationStyle::Broadside, 100.0, 512, 3).unwrap();
        assert_eq!(r.pairs, 512);
        assert!(r.coverage_pct() < 100.0);
    }

    #[test]
    fn test_time_model() {
        use ApplicationStyle::*;
        assert_eq!(cycles_per_pattern(ArbitraryTwoPattern, 100), 202);
        assert_eq!(cycles_per_pattern(Broadside, 100), 102);
        assert_eq!(cycles_per_pattern(SkewedLoad, 100), 101);
    }
}
