//! Simulation-based fault diagnosis (effect–cause candidate ranking).
//!
//! The paper motivates scan-based structural delay testing because it
//! "not only helps detection but also diagnosis of delay faults". This
//! module provides the classic cause–effect dictionaryless diagnosis for
//! the stuck-at model: given the tester's observed responses to a pattern
//! set, every candidate fault is simulated and scored by how exactly its
//! predicted responses match the observation, failing patterns and passing
//! patterns alike.

use flh_netlist::{LaneWord, Packed256, PatternWord};

use crate::fault::Fault;
use crate::fsim::{StuckSimulator, PATTERN_BLOCK};
use crate::tview::TestView;

/// One scored diagnosis candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosisCandidate {
    /// The candidate fault.
    pub fault: Fault,
    /// Patterns whose full observed response the candidate predicts
    /// exactly.
    pub matching_patterns: usize,
    /// Failing patterns (observed ≠ golden) the candidate explains.
    pub explained_failures: usize,
    /// Failing patterns the candidate predicts but the tester did not see
    /// (mispredictions — perfect candidates have zero).
    pub mispredicted_failures: usize,
}

impl DiagnosisCandidate {
    /// True when the candidate reproduces the observation bit-exactly on
    /// every pattern.
    pub fn is_perfect(&self, total_patterns: usize) -> bool {
        self.matching_patterns == total_patterns
    }
}

/// Golden (fault-free) responses for a pattern set, one observation vector
/// per pattern, in [`TestView::observations`] order.
pub fn golden_responses(view: &TestView<'_>, patterns: &[Vec<bool>]) -> Vec<Vec<bool>> {
    patterns
        .iter()
        .map(|p| {
            let words: Vec<u64> = p.iter().map(|&b| if b { !0 } else { 0 }).collect();
            view.observe64(&view.eval64(&words, None))
                .iter()
                .map(|&w| w & 1 == 1)
                .collect()
        })
        .collect()
}

/// Responses of the circuit with `fault` injected.
pub fn faulty_responses(
    view: &TestView<'_>,
    fault: &Fault,
    patterns: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    patterns
        .iter()
        .map(|p| {
            let words: Vec<u64> = p.iter().map(|&b| if b { !0 } else { 0 }).collect();
            view.observe64(&view.eval64(&words, Some(fault)))
                .iter()
                .map(|&w| w & 1 == 1)
                .collect()
        })
        .collect()
}

/// Ranks every candidate in `faults` against the observed responses.
///
/// Candidates are returned sorted best-first: by exact-match count, then by
/// explained failures, then by fewest mispredictions. A cheap
/// pre-screening pass (64-way parallel fault simulation over the *failing*
/// patterns only) drops candidates that cannot explain any failure before
/// the expensive per-pattern comparison.
pub fn diagnose(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    observed: &[Vec<bool>],
) -> Vec<DiagnosisCandidate> {
    assert_eq!(patterns.len(), observed.len(), "one response per pattern");
    let golden = golden_responses(view, patterns);
    let failing: Vec<usize> = (0..patterns.len())
        .filter(|&i| golden[i] != observed[i])
        .collect();

    // Pre-screen: a real candidate must be *detected* by at least one
    // failing pattern.
    let screened: Vec<&Fault> = if failing.is_empty() {
        faults.iter().collect()
    } else {
        let failing_patterns: Vec<Vec<bool>> =
            failing.iter().map(|&i| patterns[i].clone()).collect();
        let mut sim = StuckSimulator::new(view);
        let mut detected = vec![false; faults.len()];
        let n = view.assignable().len();
        for chunk in failing_patterns.chunks(PATTERN_BLOCK) {
            let mut words = vec![Packed256::bot(); n];
            for (lane, p) in chunk.iter().enumerate() {
                for (i, &bit) in p.iter().enumerate() {
                    if bit {
                        words[i].0[lane / 64] |= 1 << (lane % 64);
                    }
                }
            }
            let mask = Packed256::mask_lanes(chunk.len());
            sim.run_batch(&words, mask, faults, &mut detected);
        }
        faults
            .iter()
            .zip(&detected)
            .filter(|(_, &d)| d)
            .map(|(f, _)| f)
            .collect()
    };

    let mut candidates: Vec<DiagnosisCandidate> = screened
        .into_iter()
        .map(|fault| {
            let predicted = faulty_responses(view, fault, patterns);
            let mut matching = 0;
            let mut explained = 0;
            let mut mispredicted = 0;
            for i in 0..patterns.len() {
                let fails_pred = predicted[i] != golden[i];
                let fails_obs = golden[i] != observed[i];
                if predicted[i] == observed[i] {
                    matching += 1;
                    if fails_obs {
                        explained += 1;
                    }
                } else if fails_pred && !fails_obs {
                    mispredicted += 1;
                }
            }
            DiagnosisCandidate {
                fault: *fault,
                matching_patterns: matching,
                explained_failures: explained,
                mispredicted_failures: mispredicted,
            }
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.matching_patterns
            .cmp(&a.matching_patterns)
            .then(b.explained_failures.cmp(&a.explained_failures))
            .then(a.mispredicted_failures.cmp(&b.mispredicted_failures))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use flh_netlist::{generate_circuit, GeneratorConfig, Netlist};
    use flh_rng::Rng;

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "diag".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 8,
            gates: 70,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 515,
        })
        .unwrap()
    }

    fn random_patterns(view: &TestView<'_>, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..view.assignable().len()).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn injected_fault_ranks_first() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let patterns = random_patterns(&view, 200, 1);
        // Pick a fault that the pattern set actually detects.
        let detected = crate::fsim::stuck_coverage(&view, &faults, &patterns);
        let culprit = faults
            .iter()
            .zip(&detected)
            .find(|(_, &d)| d)
            .map(|(f, _)| *f)
            .expect("some detectable fault");
        let observed = faulty_responses(&view, &culprit, &patterns);
        let ranking = diagnose(&view, &faults, &patterns, &observed);
        assert!(!ranking.is_empty());
        let top = &ranking[0];
        assert!(top.is_perfect(patterns.len()));
        // The true culprit must be among the perfect candidates (it may
        // share the top with logically equivalent faults).
        let perfect: Vec<_> = ranking
            .iter()
            .take_while(|c| c.is_perfect(patterns.len()))
            .collect();
        assert!(
            perfect.iter().any(|c| c.fault == culprit),
            "culprit {culprit:?} not among {} perfect candidates",
            perfect.len()
        );
        // Diagnosis resolution: the equivalence class should be small.
        assert!(
            perfect.len() <= 8,
            "poor resolution: {} perfect candidates",
            perfect.len()
        );
    }

    #[test]
    fn clean_observation_yields_no_explained_failures() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let patterns = random_patterns(&view, 50, 2);
        let observed = golden_responses(&view, &patterns);
        let ranking = diagnose(&view, &faults, &patterns, &observed);
        for c in &ranking {
            assert_eq!(c.explained_failures, 0);
        }
    }

    #[test]
    fn prescreen_drops_unrelated_faults() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let patterns = random_patterns(&view, 200, 3);
        let detected = crate::fsim::stuck_coverage(&view, &faults, &patterns);
        let culprit = faults
            .iter()
            .zip(&detected)
            .find(|(_, &d)| d)
            .map(|(f, _)| *f)
            .unwrap();
        let observed = faulty_responses(&view, &culprit, &patterns);
        let ranking = diagnose(&view, &faults, &patterns, &observed);
        // The screen drops faults no failing pattern detects; the survivors
        // are a strict subset, and the best of them explains failures.
        assert!(ranking.len() < faults.len());
        assert!(ranking[0].explained_failures > 0);
    }

    #[test]
    fn two_distinguishable_faults_do_not_tie() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let patterns = random_patterns(&view, 300, 4);
        let detected = crate::fsim::stuck_coverage(&view, &faults, &patterns);
        let mut detectable = faults
            .iter()
            .zip(&detected)
            .filter(|(_, &d)| d)
            .map(|(f, _)| *f);
        let fault_a = detectable.next().unwrap();
        let fault_b = detectable
            .find(|f| {
                faulty_responses(&view, f, &patterns)
                    != faulty_responses(&view, &fault_a, &patterns)
            })
            .expect("a distinguishable second fault");
        let observed = faulty_responses(&view, &fault_a, &patterns);
        let ranking = diagnose(&view, &faults, &patterns, &observed);
        let score = |f: &Fault| {
            ranking
                .iter()
                .find(|c| c.fault == *f)
                .map(|c| c.matching_patterns)
        };
        let sa = score(&fault_a).expect("culprit ranked");
        if let Some(sb) = score(&fault_b) {
            assert!(sa > sb, "culprit {sa} should outscore bystander {sb}");
        }
    }

    #[test]
    fn stuck_value_duals_are_distinguished() {
        // s-a-0 and s-a-1 at the same site can never both be perfect.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let patterns = random_patterns(&view, 200, 5);
        let detected = crate::fsim::stuck_coverage(&view, &faults, &patterns);
        let culprit = faults
            .iter()
            .zip(&detected)
            .find(|(f, &d)| d && f.stuck == StuckValue::Zero)
            .map(|(f, _)| *f)
            .unwrap();
        let dual = Fault {
            stuck: StuckValue::One,
            ..culprit
        };
        let observed = faulty_responses(&view, &culprit, &patterns);
        let ranking = diagnose(&view, &faults, &patterns, &observed);
        let perfect: Vec<_> = ranking
            .iter()
            .take_while(|c| c.is_perfect(patterns.len()))
            .map(|c| c.fault)
            .collect();
        assert!(perfect.contains(&culprit));
        assert!(!perfect.contains(&dual));
    }
}
