//! Transition-delay faults: two-pattern ATPG and pattern-pair simulation.
//!
//! A transition fault (slow-to-rise / slow-to-fall at a stem) is detected
//! by a pattern pair (V1, V2) iff V1 sets the site to the initial value,
//! V2 sets it to the final value, and V2 — viewed as a stuck-at test for
//! the site stuck at the *initial* value — propagates the effect to an
//! observation point. Under enhanced-scan / FLH application V1 and V2 are
//! arbitrary, so ATPG decomposes into a PODEM stuck-at test for V2 plus a
//! justification for V1 — precisely why the paper's technique, which
//! enables arbitrary pairs cheaply, preserves full ATPG power.

use flh_exec::{DropMask, ThreadPool};
use flh_netlist::{
    analysis, CellId, CellKind, CompiledCircuit, LaneWord, Netlist, Packed256, PatternWord,
};
use flh_rng::Rng;

use crate::fault::{Fault, StuckValue};
use crate::fsim::{FaultStats, MIN_FAULTS_PER_SHARD, PATTERN_BLOCK};
use crate::podem::{Podem, PodemConfig};
use crate::replay::DeviationReplay;
use crate::tview::TestView;

/// Transition polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// The rising edge at the site is too slow (tested by launching 0→1).
    SlowToRise,
    /// The falling edge is too slow (tested by launching 1→0).
    SlowToFall,
}

/// A transition-delay fault at a stem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// The faulted line's driver.
    pub site: CellId,
    /// Polarity.
    pub kind: TransitionKind,
}

impl TransitionFault {
    /// Initial (V1) value the site must take.
    pub fn initial_value(&self) -> bool {
        self.kind == TransitionKind::SlowToFall
    }

    /// Final (V2) value the site must take.
    pub fn final_value(&self) -> bool {
        !self.initial_value()
    }

    /// The stuck-at fault V2 must detect (site stuck at the initial value).
    pub fn stuck_equivalent(&self) -> Fault {
        let stuck = if self.initial_value() {
            StuckValue::One
        } else {
            StuckValue::Zero
        };
        Fault::stem(self.site, stuck)
    }
}

/// Per-cell flags: the cell has a combinational path to an observation
/// point (a primary output, or the D input of a flip-flop — the same
/// boundary [`TestView::observations`] measures at).
///
/// Computed by a reverse walk from the fanins of every `Output` and
/// flip-flop cell, stopping at sequential elements: a flip-flop *found* on
/// the walk is reachable through its Q output, but its own D fanin belongs
/// to the previous time frame and is seeded separately.
fn observation_reach(netlist: &Netlist) -> Vec<bool> {
    let mut reach = vec![false; netlist.cell_count()];
    let mut stack: Vec<CellId> = Vec::new();
    for (_, cell) in netlist.iter() {
        if cell.kind() == CellKind::Output || cell.kind().is_flip_flop() {
            for &f in cell.fanin() {
                if !reach[f.index()] {
                    reach[f.index()] = true;
                    stack.push(f);
                }
            }
        }
    }
    while let Some(id) = stack.pop() {
        let cell = netlist.cell(id);
        if cell.kind().is_flip_flop() {
            continue; // Q reachable; D is another frame's problem
        }
        for &f in cell.fanin() {
            if !reach[f.index()] {
                reach[f.index()] = true;
                stack.push(f);
            }
        }
    }
    reach
}

/// Enumerates both transition faults on every stem with at least one
/// reader (combinational cells, primary inputs, flip-flop outputs) **and**
/// a path to an observation point. A site whose entire fanout cone dies
/// before any output or flip-flop D pin can never be detected; skipping it
/// here saves an activation-lane check per fault per batch forever, and
/// keeps reported coverage honest (the paper's coverage figures exclude
/// structurally undetectable faults).
pub fn enumerate_transition_faults(netlist: &Netlist) -> Vec<TransitionFault> {
    let fanouts = analysis::FanoutMap::compute(netlist);
    let reach = observation_reach(netlist);
    let mut faults = Vec::new();
    for (id, cell) in netlist.iter() {
        if cell.kind() == CellKind::Output || fanouts.fanout_count(id) == 0 || !reach[id.index()] {
            continue;
        }
        faults.push(TransitionFault {
            site: id,
            kind: TransitionKind::SlowToRise,
        });
        faults.push(TransitionFault {
            site: id,
            kind: TransitionKind::SlowToFall,
        });
    }
    faults
}

/// The representative that justifies *dropping* `fault` during
/// [`collapse_transition_faults`], or `None` if the fault must be kept.
///
/// Two local rules, mirroring [`crate::fault::collapse_faults`] but
/// restricted so their justification chains can never meet in a cycle:
///
/// * **Equivalence** (through `Buf`/`Inv`): a site whose only reader is a
///   buffer or inverter launches the reader's transition on the same pair
///   — same V1/V2 site conditions up to the inversion, same stuck-at
///   detection condition (classic single-fanout equivalence). The fault
///   folds *forward* into the reader, polarity flipped through `Inv`.
/// * **Dominance** (into `And*`/`Nand*`/`Or*`/`Nor*`): any pair detecting
///   a single-fanout fanin's transition through the gate holds every other
///   fanin non-controlling in V2 and drives the fanin's V1 value through
///   to the gate output, so it also launches and detects the gate's output
///   transition of the matching polarity (`And`: slow-to-rise, `Nand`/
///   `Or`: slow-to-fall, `Nor`: slow-to-rise). The gate fault folds
///   *backward* into that fanin. Constant fanins are excluded (they never
///   transition).
///
/// Equivalence edges point forward through `Buf`/`Inv` readers only, and
/// dominance edges point backward from `And`/`Nand`/`Or`/`Nor` gates only;
/// a justifier of either rule can therefore only be dropped again by the
/// *same* rule, chains run strictly forward or strictly backward through
/// the DAG, and every chain ends at a kept fault. By induction, a test set
/// detecting every kept fault detects every dropped one.
pub fn transition_collapse_justifier(
    netlist: &Netlist,
    fanouts: &analysis::FanoutMap,
    fault: &TransitionFault,
) -> Option<TransitionFault> {
    // Equivalence: single reader, Buf/Inv, reader itself drives something.
    if fanouts.fanout_count(fault.site) == 1 {
        let reader = fanouts.readers(fault.site)[0];
        let kind = netlist.cell(reader).kind();
        if matches!(kind, CellKind::Buf | CellKind::Inv) && fanouts.fanout_count(reader) > 0 {
            let rkind = if kind == CellKind::Buf {
                fault.kind
            } else {
                match fault.kind {
                    TransitionKind::SlowToRise => TransitionKind::SlowToFall,
                    TransitionKind::SlowToFall => TransitionKind::SlowToRise,
                }
            };
            return Some(TransitionFault {
                site: reader,
                kind: rkind,
            });
        }
    }
    // Dominance: the gate's output transition of the polarity launched by a
    // rising (And/Nand) or falling (Or/Nor) single-fanout fanin.
    let cell = netlist.cell(fault.site);
    let (dropped_kind, fanin_kind) = match cell.kind() {
        CellKind::And2 | CellKind::And3 | CellKind::And4 => {
            (TransitionKind::SlowToRise, TransitionKind::SlowToRise)
        }
        CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => {
            (TransitionKind::SlowToFall, TransitionKind::SlowToRise)
        }
        CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => {
            (TransitionKind::SlowToFall, TransitionKind::SlowToFall)
        }
        CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => {
            (TransitionKind::SlowToRise, TransitionKind::SlowToFall)
        }
        _ => return None,
    };
    if fault.kind != dropped_kind {
        return None;
    }
    cell.fanin()
        .iter()
        .find(|&&f| {
            fanouts.fanout_count(f) == 1
                && !matches!(netlist.cell(f).kind(), CellKind::Const0 | CellKind::Const1)
        })
        .map(|&f| TransitionFault {
            site: f,
            kind: fanin_kind,
        })
}

/// Equivalence/dominance collapsing of a transition fault list (see
/// [`transition_collapse_justifier`] for the rules and their soundness).
/// Only ever removes faults: a test set detecting the collapsed list
/// detects the full list, so campaign coverage semantics are preserved
/// while every dropped fault saves its activation check and replay in
/// every batch.
pub fn collapse_transition_faults(
    netlist: &Netlist,
    faults: &[TransitionFault],
) -> Vec<TransitionFault> {
    let fanouts = analysis::FanoutMap::compute(netlist);
    faults
        .iter()
        .filter(|f| transition_collapse_justifier(netlist, &fanouts, f).is_none())
        .copied()
        .collect()
}

/// A fully specified two-pattern test in assignable order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionPattern {
    /// Initialization pattern.
    pub v1: Vec<bool>,
    /// Launch pattern.
    pub v2: Vec<bool>,
}

/// Event-driven transition fault simulator over a test view, built on the
/// shared [`DeviationReplay`] engine.
///
/// Like [`crate::fsim::StuckSimulator`], it walks the view's compiled
/// circuit: the faulty V2 machine is replayed in place from the fault site
/// through the readers of changed cells only — never the site's full
/// static fanout cone — detection scans only changed observation drivers,
/// and replay aborts as soon as an activation lane miscompares.
pub struct TransitionSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    /// Good V2 values, reused across batches; faulty resimulation mutates
    /// it in place under the replay engine's undo log.
    values2: Vec<Packed256>,
    /// Good V1 values (never mutated per fault).
    values1: Vec<Packed256>,
    replay: DeviationReplay<Packed256>,
}

impl<'v, 'a> TransitionSimulator<'v, 'a> {
    /// Builds a simulator.
    pub fn new(view: &'v TestView<'a>) -> Self {
        TransitionSimulator {
            view,
            values2: Vec::new(),
            values1: Vec::new(),
            replay: DeviationReplay::new(view.compiled(), view.program_arc()),
        }
    }

    /// Event-driven replay of the V2 machine under `fault`'s stuck
    /// equivalent; returns the observation miscompare word and leaves
    /// `values2` restored to the good machine. `stop_lanes` is forwarded
    /// to [`DeviationReplay::replay`]: detection passes the activation
    /// lanes (abort on first miscompare there), counting passes
    /// [`Packed256::bot`] (full propagation for an exact per-lane word).
    fn faulty_miscompare(&mut self, fault: &TransitionFault, stop_lanes: Packed256) -> Packed256 {
        let seed = fault.site.index() as u32;
        let forced = if fault.stuck_equivalent().stuck.as_bool() {
            Packed256::top()
        } else {
            Packed256::bot()
        };
        self.replay.replay(
            self.view.compiled(),
            self.view.observed_drivers(),
            &mut self.values2,
            seed,
            forced,
            stop_lanes,
        )
    }

    /// Simulates up to 256 pattern pairs against a fault set, marking
    /// newly detected faults in `detected` (fault-dropping style). Returns
    /// the number of new detections.
    ///
    /// `v1_words[i]` / `v2_words[i]` carry one bit per pair for assignable
    /// `i`; `active_mask` limits which bit lanes hold real pairs (padding
    /// lanes of a partial final block never influence detection).
    pub fn run_batch(
        &mut self,
        v1_words: &[Packed256],
        v2_words: &[Packed256],
        active_mask: Packed256,
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        let (view, values1, values2) = (self.view, &mut self.values1, &mut self.values2);
        view.eval_lanes_into(v1_words, values1);
        view.eval_lanes_into(v2_words, values2);
        let mut new_hits = 0;
        let mut activation_skips = 0u64;

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let lanes = self.activation_lanes(fault).and(active_mask);
            if !lanes.any() {
                activation_skips += 1;
                continue;
            }
            if self.faulty_miscompare(fault, lanes).and(lanes).any() {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        if flh_obs::enabled() {
            // Per-fault quantities only: invariant under fault-list
            // sharding (the good-machine evaluations above are per-shard
            // work and deliberately uncounted).
            flh_obs::add(
                flh_obs::Counter::TransitionActivationSkips,
                activation_skips,
            );
            flh_obs::add(flh_obs::Counter::TransitionDetections, new_hits as u64);
        }
        new_hits
    }

    /// Lanes where V1 sets the initial value and V2 the final value at the
    /// fault site.
    fn activation_lanes(&self, fault: &TransitionFault) -> Packed256 {
        let site = fault.site.index();
        let init_mask = if fault.initial_value() {
            self.values1[site]
        } else {
            self.values1[site].not()
        };
        let launch_mask = if fault.final_value() {
            self.values2[site]
        } else {
            self.values2[site].not()
        };
        init_mask.and(launch_mask)
    }

    /// Like [`TransitionSimulator::run_batch`], but counts *how many*
    /// distinct pattern lanes detect each fault (saturating at `target`),
    /// for N-detect test generation. Returns the number of faults that
    /// reached `target` in this batch.
    pub fn run_batch_counting(
        &mut self,
        v1_words: &[Packed256],
        v2_words: &[Packed256],
        active_mask: Packed256,
        faults: &[TransitionFault],
        counts: &mut [u32],
        target: u32,
    ) -> usize {
        let (view, values1, values2) = (self.view, &mut self.values1, &mut self.values2);
        view.eval_lanes_into(v1_words, values1);
        view.eval_lanes_into(v2_words, values2);
        let mut newly_saturated = 0;
        let mut activation_skips = 0u64;

        for (fi, fault) in faults.iter().enumerate() {
            if counts[fi] >= target {
                continue;
            }
            let lanes = self.activation_lanes(fault).and(active_mask);
            if !lanes.any() {
                activation_skips += 1;
                continue;
            }
            // stop_lanes = bot: counting needs the exact per-lane word, so
            // the replay must run to quiescence — no early exit.
            let hits = self
                .faulty_miscompare(fault, Packed256::bot())
                .and(lanes)
                .count_ones();
            if hits > 0 {
                let before = counts[fi];
                counts[fi] = (counts[fi] + hits).min(target);
                if before < target && counts[fi] >= target {
                    newly_saturated += 1;
                }
            }
        }
        if flh_obs::enabled() {
            flh_obs::add(
                flh_obs::Counter::TransitionActivationSkips,
                activation_skips,
            );
        }
        newly_saturated
    }
}

/// Packs up to [`PATTERN_BLOCK`] pattern pairs into per-assignable
/// superwords and returns the lane mask covering exactly the packed pairs.
fn pack_pair_batch(
    chunk: &[TransitionPattern],
    n: usize,
    v1_words: &mut [Packed256],
    v2_words: &mut [Packed256],
) -> Packed256 {
    v1_words.fill(Packed256::bot());
    v2_words.fill(Packed256::bot());
    for (lane, p) in chunk.iter().enumerate() {
        let (limb, bit) = (lane / 64, 1u64 << (lane % 64));
        for i in 0..n {
            if p.v1[i] {
                v1_words[i].0[limb] |= bit;
            }
            if p.v2[i] {
                v2_words[i].0[limb] |= bit;
            }
        }
    }
    Packed256::mask_lanes(chunk.len())
}

/// Reorders a transition fault list **level-major by site** (ties broken
/// by dense cell id, then original position): the replay seeded at each
/// site then sweeps the compiled program front-to-back, so consecutive
/// faults touch adjacent bytecode/CSR regions. Locality only — per-fault
/// detection results never depend on processing order; callers returning
/// per-fault vectors must scatter results back through the permutation.
pub fn order_transition_faults(
    compiled: &CompiledCircuit,
    faults: &[TransitionFault],
) -> Vec<TransitionFault> {
    let mut ordered: Vec<TransitionFault> = faults.to_vec();
    ordered.sort_by_key(|f| {
        let seed = f.site.index() as u32;
        (compiled.level_of(seed), seed)
    });
    ordered
}

/// One worker's share of a partitioned pair campaign: a fresh simulator,
/// the full pattern-pair set, a contiguous fault shard. Faults flagged in
/// `dropped` were detected by an earlier call and are never replayed
/// again; the shard's updated flags are merged back by the caller.
fn pair_stats_shard(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
    mut dropped: Vec<bool>,
) -> (Vec<FaultStats>, Vec<bool>) {
    let mut sim = TransitionSimulator::new(view);
    let mut stats = vec![FaultStats::default(); faults.len()];
    let already: Vec<bool> = dropped.clone();
    let n = view.assignable().len();
    let mut v1_words = vec![Packed256::bot(); n];
    let mut v2_words = vec![Packed256::bot(); n];
    for (batch, chunk) in patterns.chunks(PATTERN_BLOCK).enumerate() {
        let mask = pack_pair_batch(chunk, n, &mut v1_words, &mut v2_words);
        let new_hits = sim.run_batch(&v1_words, &v2_words, mask, faults, &mut dropped);
        if new_hits > 0 {
            for ((s, &d), &pre) in stats.iter_mut().zip(&dropped).zip(&already) {
                if d && !pre && !s.detected {
                    s.detected = true;
                    s.first_batch = Some(batch as u32);
                }
            }
        }
    }
    (stats, dropped)
}

impl TransitionSimulator<'_, '_> {
    /// Partitioned pattern-pair campaign: one contiguous fault shard per
    /// pool worker, each on its own simulator, per-fault stats merged **by
    /// fault id** (contiguous ascending shards, concatenated in partition
    /// order — never completion order). Bit-identical at any pool size.
    pub fn simulate_partitioned(
        view: &TestView<'_>,
        faults: &[TransitionFault],
        patterns: &[TransitionPattern],
        pool: &ThreadPool,
    ) -> Vec<FaultStats> {
        let mut drops = DropMask::new(faults.len());
        Self::simulate_partitioned_dropping(view, faults, patterns, pool, &mut drops)
    }

    /// [`TransitionSimulator::simulate_partitioned`] with a persistent
    /// [`DropMask`]: faults already dropped are skipped by every shard and
    /// batch, and this call's detections are merged back into `drops`, so
    /// a staged campaign (incremental pair blocks) never re-replays a
    /// detected fault. Stats describe **this call only** — a fault dropped
    /// by an earlier call reports `FaultStats::default()`.
    pub fn simulate_partitioned_dropping(
        view: &TestView<'_>,
        faults: &[TransitionFault],
        patterns: &[TransitionPattern],
        pool: &ThreadPool,
        drops: &mut DropMask,
    ) -> Vec<FaultStats> {
        assert_eq!(drops.len(), faults.len(), "drop mask length mismatch");
        let parts = pool.run_partitioned_min(faults.len(), MIN_FAULTS_PER_SHARD, |range| {
            pair_stats_shard(view, &faults[range.clone()], patterns, drops.shard(range))
        });
        let mut stats = Vec::with_capacity(faults.len());
        for (range, (shard, flags)) in parts {
            stats.extend(shard);
            drops.merge_shard(range, &flags);
        }
        stats
    }
}

/// Reference transition detection for one fault and one 64-pair batch:
/// full faulted V2 re-evaluation through [`TestView::eval64`] under the
/// stuck equivalent, full observation scan, activation computed from the
/// good V1/V2 machines. Quadratically slower than [`TransitionSimulator`]
/// but independent of the replay/undo machinery — the equivalence oracle
/// for it (the legacy full-cone path answered exactly this word).
pub fn transition_detects_reference(
    view: &TestView<'_>,
    fault: &TransitionFault,
    v1_words: &[u64],
    v2_words: &[u64],
    mask: u64,
) -> u64 {
    let good1 = view.eval64(v1_words, None);
    let good2 = view.eval64(v2_words, None);
    let site = fault.site.index();
    let init = if fault.initial_value() {
        good1[site]
    } else {
        !good1[site]
    };
    let launch = if fault.final_value() {
        good2[site]
    } else {
        !good2[site]
    };
    let stuck = fault.stuck_equivalent();
    let faulty2 = view.eval64(v2_words, Some(&stuck));
    let obs_good = view.observe64(&good2);
    let obs_faulty = view.observe64(&faulty2);
    let miscompare = obs_good
        .iter()
        .zip(&obs_faulty)
        .fold(0u64, |acc, (g, b)| acc | (g ^ b));
    miscompare & init & launch & mask
}

/// Simulates a pattern-pair set against a fault list, returning per-fault
/// detection flags. Serial ([`ThreadPool::serial`]) case of
/// [`simulate_transition_patterns_partitioned`].
pub fn simulate_transition_patterns(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
) -> Vec<bool> {
    simulate_transition_patterns_partitioned(view, faults, patterns, &ThreadPool::serial())
}

/// Pooled [`simulate_transition_patterns`]: faults sharded over the pool,
/// detection flags merged in fault-id order, identical at any pool size.
pub fn simulate_transition_patterns_partitioned(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
    pool: &ThreadPool,
) -> Vec<bool> {
    TransitionSimulator::simulate_partitioned(view, faults, patterns, pool)
        .into_iter()
        .map(|s| s.detected)
        .collect()
}

/// Staged [`simulate_transition_patterns_partitioned`]: detections
/// accumulate in `drops` across calls, already-dropped faults are skipped
/// by every shard, and the returned flags are the mask's state *after*
/// this call (cumulative coverage, not per-call novelty).
pub fn simulate_transition_patterns_dropping(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
    pool: &ThreadPool,
    drops: &mut DropMask,
) -> Vec<bool> {
    TransitionSimulator::simulate_partitioned_dropping(view, faults, patterns, pool, drops);
    drops.flags().to_vec()
}

/// Result of a deterministic transition ATPG run.
#[derive(Clone, Debug)]
pub struct TransitionAtpgResult {
    /// Generated pattern pairs.
    pub patterns: Vec<TransitionPattern>,
    /// Per-fault detection flags (aligned with the input fault list).
    pub detected: Vec<bool>,
    /// Faults proven or declared untestable / aborted by PODEM.
    pub untestable: usize,
}

impl TransitionAtpgResult {
    /// Detected-fault count.
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Fault coverage in percent (detected / total).
    pub fn coverage_pct(&self) -> f64 {
        if self.detected.is_empty() {
            100.0
        } else {
            100.0 * self.detected_count() as f64 / self.detected.len() as f64
        }
    }

    /// Fault efficiency in percent ((detected + untestable) / total).
    pub fn efficiency_pct(&self) -> f64 {
        if self.detected.is_empty() {
            100.0
        } else {
            100.0 * (self.detected_count() + self.untestable) as f64 / self.detected.len() as f64
        }
    }
}

/// Deterministic two-pattern transition ATPG with fault dropping, assuming
/// arbitrary (enhanced-scan / FLH) pattern application.
///
/// For each undetected fault: PODEM generates V2 as a stuck-at test for the
/// site, V1 as a justification of the launch value; don't-cares are filled
/// randomly (seeded) and the new pair is fault-simulated against all
/// remaining faults.
pub fn transition_atpg(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    config: &PodemConfig,
    seed: u64,
) -> TransitionAtpgResult {
    let filter = crate::prune::StaticFilter::from_view(view);
    transition_atpg_with_filter(view, faults, config, seed, Some(&filter))
}

/// [`transition_atpg`] with an explicit prune filter (`None` disables
/// pruning). The two modes produce byte-identical results on a sound
/// filter: PODEM consumes no randomness during generation (`fill_random`
/// runs only after both cubes exist), and a statically untestable fault is
/// exactly one PODEM would have declared untestable anyway — skipping it
/// changes neither the RNG stream nor the pattern sequence. The bench
/// suite asserts this equality on real circuits.
pub fn transition_atpg_with_filter(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    config: &PodemConfig,
    seed: u64,
    filter: Option<&crate::prune::StaticFilter>,
) -> TransitionAtpgResult {
    let podem = Podem::new(view, config.clone());
    let mut rng = Rng::seed_from_u64(seed);
    let mut detected = vec![false; faults.len()];
    let mut untestable = 0usize;
    let mut patterns = Vec::new();
    let mut sim = TransitionSimulator::new(view);
    let n = view.assignable().len();

    for fi in 0..faults.len() {
        if detected[fi] {
            continue;
        }
        let fault = faults[fi];
        if filter.is_some_and(|f| f.transition_untestable(&fault)) {
            untestable += 1;
            continue;
        }
        let v2_cube = match podem.generate(&fault.stuck_equivalent()) {
            Some(c) => c,
            None => {
                untestable += 1;
                continue;
            }
        };
        let v1_cube = match podem.justify(fault.site, fault.initial_value()) {
            Some(c) => c,
            None => {
                untestable += 1;
                continue;
            }
        };
        let pattern = TransitionPattern {
            v1: v1_cube.fill_random(&mut rng),
            v2: v2_cube.fill_random(&mut rng),
        };
        // Simulate the new pair against every remaining fault (lane 0
        // carries the pair; the rest of the block is masked off).
        let mut v1_words = vec![Packed256::bot(); n];
        let mut v2_words = vec![Packed256::bot(); n];
        for i in 0..n {
            v1_words[i] = Packed256::from_word(if pattern.v1[i] { 1 } else { 0 });
            v2_words[i] = Packed256::from_word(if pattern.v2[i] { 1 } else { 0 });
        }
        sim.run_batch(
            &v1_words,
            &v2_words,
            Packed256::lane_bit(0),
            faults,
            &mut detected,
        );
        debug_assert!(detected[fi], "generated pair must detect its target");
        detected[fi] = true;
        patterns.push(pattern);
    }

    TransitionAtpgResult {
        patterns,
        detected,
        untestable,
    }
}

/// Result of N-detect transition ATPG.
#[derive(Clone, Debug)]
pub struct NDetectResult {
    /// Generated pattern pairs.
    pub patterns: Vec<TransitionPattern>,
    /// Detection count per fault (saturated at the requested N).
    pub counts: Vec<u32>,
    /// Faults PODEM proved or abandoned as untestable.
    pub untestable: usize,
}

impl NDetectResult {
    /// Faults detected at least `n` times.
    pub fn fully_detected(&self, n: u32) -> usize {
        self.counts.iter().filter(|&&c| c >= n).count()
    }

    /// N-detect coverage in percent.
    pub fn coverage_pct(&self, n: u32) -> f64 {
        if self.counts.is_empty() {
            100.0
        } else {
            100.0 * self.fully_detected(n) as f64 / self.counts.len() as f64
        }
    }
}

/// N-detect transition ATPG: every fault is targeted until it has been
/// detected by `n` *distinct* pattern pairs. Diversity comes from the
/// random fill of PODEM's don't-cares (the specified cube per fault is
/// deterministic), which is the standard low-cost approximation of
/// path-diverse N-detect; identical consecutive fills terminate the
/// per-fault loop early.
pub fn transition_atpg_ndetect(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    config: &PodemConfig,
    seed: u64,
    n: u32,
) -> NDetectResult {
    assert!(n >= 1, "n-detect needs n >= 1");
    let podem = Podem::new(view, config.clone());
    let mut rng = Rng::seed_from_u64(seed);
    let mut counts = vec![0u32; faults.len()];
    let mut untestable = 0usize;
    let mut patterns: Vec<TransitionPattern> = Vec::new();
    let mut sim = TransitionSimulator::new(view);
    let na = view.assignable().len();

    for fi in 0..faults.len() {
        if counts[fi] >= n {
            continue;
        }
        let fault = faults[fi];
        let Some(v2_cube) = podem.generate(&fault.stuck_equivalent()) else {
            untestable += 1;
            continue;
        };
        let Some(v1_cube) = podem.justify(fault.site, fault.initial_value()) else {
            untestable += 1;
            continue;
        };
        let mut last: Option<TransitionPattern> = None;
        let mut attempts = 0u32;
        while counts[fi] < n && attempts < 3 * n {
            attempts += 1;
            let pattern = TransitionPattern {
                v1: v1_cube.fill_random(&mut rng),
                v2: v2_cube.fill_random(&mut rng),
            };
            if last.as_ref() == Some(&pattern) {
                // Fully specified cube: no diversity left; count it once.
                counts[fi] = counts[fi].max(1);
                break;
            }
            let mut v1_words = vec![Packed256::bot(); na];
            let mut v2_words = vec![Packed256::bot(); na];
            for i in 0..na {
                v1_words[i] = Packed256::from_word(if pattern.v1[i] { 1 } else { 0 });
                v2_words[i] = Packed256::from_word(if pattern.v2[i] { 1 } else { 0 });
            }
            sim.run_batch_counting(
                &v1_words,
                &v2_words,
                Packed256::lane_bit(0),
                faults,
                &mut counts,
                n,
            );
            last = Some(pattern.clone());
            patterns.push(pattern);
        }
    }

    NDetectResult {
        patterns,
        counts,
        untestable,
    }
}

/// Static (reverse-order) compaction of a transition test set: patterns
/// are re-fault-simulated in reverse generation order and kept only if
/// they detect a fault nothing later in the pass has covered. The
/// compacted set provably preserves coverage (verified by the caller's
/// tests via resimulation) and is typically 20-50 % smaller, reducing the
/// scan-in time that dominates two-pattern test application.
pub fn compact_transition_patterns(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
) -> Vec<TransitionPattern> {
    let mut sim = TransitionSimulator::new(view);
    let mut detected = vec![false; faults.len()];
    let n = view.assignable().len();
    let mut kept: Vec<TransitionPattern> = Vec::new();
    for pattern in patterns.iter().rev() {
        let mut v1 = vec![Packed256::bot(); n];
        let mut v2 = vec![Packed256::bot(); n];
        for i in 0..n {
            v1[i] = Packed256::from_word(if pattern.v1[i] { 1 } else { 0 });
            v2[i] = Packed256::from_word(if pattern.v2[i] { 1 } else { 0 });
        }
        if sim.run_batch(&v1, &v2, Packed256::lane_bit(0), faults, &mut detected) > 0 {
            kept.push(pattern.clone());
        }
    }
    kept.reverse();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn small() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "tfsmall".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 6,
            gates: 50,
            logic_depth: 6,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 77,
        })
        .unwrap()
    }

    #[test]
    fn fault_model_basics() {
        let f = TransitionFault {
            site: flh_netlist::CellId::from_index(3),
            kind: TransitionKind::SlowToRise,
        };
        assert!(!f.initial_value());
        assert!(f.final_value());
        assert_eq!(f.stuck_equivalent().stuck, StuckValue::Zero);
        let f = TransitionFault {
            kind: TransitionKind::SlowToFall,
            ..f
        };
        assert_eq!(f.stuck_equivalent().stuck, StuckValue::One);
    }

    #[test]
    fn enumeration_covers_stems_twice() {
        let n = small();
        let faults = enumerate_transition_faults(&n);
        assert!(faults.len() > 2 * n.gate_count() / 2);
        assert_eq!(faults.len() % 2, 0);
    }

    #[test]
    fn atpg_reaches_high_coverage_with_arbitrary_pairs() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let result = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 9);
        assert!(
            result.coverage_pct() > 85.0,
            "coverage {}",
            result.coverage_pct()
        );
        assert!(result.efficiency_pct() > 95.0);
        // Fault dropping keeps the set compact.
        assert!(result.patterns.len() < faults.len() / 2);
    }

    #[test]
    fn atpg_patterns_reproduce_coverage_when_resimulated() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let result = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 9);
        let resim = simulate_transition_patterns(&view, &faults, &result.patterns);
        let resim_count = resim.iter().filter(|&&d| d).count();
        assert_eq!(resim_count, result.detected_count());
    }

    #[test]
    fn batch_and_serial_simulation_agree() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(4);
        let na = view.assignable().len();
        let patterns: Vec<TransitionPattern> = (0..100)
            .map(|_| TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            })
            .collect();
        let batch = simulate_transition_patterns(&view, &faults, &patterns);
        // Serial: one pattern at a time.
        let mut serial = vec![false; faults.len()];
        for p in &patterns {
            let d = simulate_transition_patterns(&view, &faults, std::slice::from_ref(p));
            for (s, d) in serial.iter_mut().zip(d) {
                *s |= d;
            }
        }
        assert_eq!(batch, serial);
    }

    #[test]
    fn partitioned_pair_simulation_matches_serial() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(19);
        let na = view.assignable().len();
        let patterns: Vec<TransitionPattern> = (0..130)
            .map(|_| TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            })
            .collect();
        let serial = TransitionSimulator::simulate_partitioned(
            &view,
            &faults,
            &patterns,
            &ThreadPool::serial(),
        );
        let flags = simulate_transition_patterns(&view, &faults, &patterns);
        for (s, &d) in serial.iter().zip(&flags) {
            assert_eq!(s.detected, d);
            assert_eq!(s.first_batch.is_some(), d);
        }
        for workers in [2, 4, 8] {
            let pooled = TransitionSimulator::simulate_partitioned(
                &view,
                &faults,
                &patterns,
                &ThreadPool::new(workers),
            );
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn ndetect_reaches_higher_multiplicity() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let cfg = PodemConfig::paper_default();
        let one = transition_atpg(&view, &faults, &cfg, 9);
        let three = transition_atpg_ndetect(&view, &faults, &cfg, 9, 3);
        // 1-detect coverage matches the plain generator's detections.
        assert_eq!(
            three.coverage_pct(1),
            100.0 * one.detected_count() as f64 / faults.len() as f64
        );
        // Most detected faults reach multiplicity 3 through fill diversity.
        assert!(
            three.fully_detected(3) as f64 >= 0.5 * one.detected_count() as f64,
            "only {}/{} reached 3-detect",
            three.fully_detected(3),
            one.detected_count()
        );
        // And it costs more patterns than single-detect.
        assert!(three.patterns.len() > one.patterns.len());
        // Resimulation confirms every counted fault is genuinely detected.
        let resim = simulate_transition_patterns(&view, &faults, &three.patterns);
        for (fi, &d) in resim.iter().enumerate() {
            assert_eq!(d, three.counts[fi] > 0, "fault {fi}");
        }
    }

    #[test]
    fn ndetect_with_n1_equals_plain_coverage() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let cfg = PodemConfig::paper_default();
        let plain = transition_atpg(&view, &faults, &cfg, 4);
        let nd = transition_atpg_ndetect(&view, &faults, &cfg, 4, 1);
        assert_eq!(nd.fully_detected(1), plain.detected_count());
        assert_eq!(nd.untestable, plain.untestable);
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks_the_set() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        // A deliberately redundant set: ATPG patterns plus random filler.
        let atpg = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 9);
        let mut rng = Rng::seed_from_u64(77);
        let na = view.assignable().len();
        let mut patterns = atpg.patterns.clone();
        for _ in 0..100 {
            patterns.push(TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            });
        }
        let before = simulate_transition_patterns(&view, &faults, &patterns);
        let compacted = compact_transition_patterns(&view, &faults, &patterns);
        let after = simulate_transition_patterns(&view, &faults, &compacted);
        assert_eq!(before, after, "compaction changed coverage");
        assert!(
            compacted.len() < patterns.len(),
            "no compaction achieved: {} -> {}",
            patterns.len(),
            compacted.len()
        );
        // Every kept pattern appears in the original set.
        for p in &compacted {
            assert!(patterns.contains(p));
        }
    }

    #[test]
    fn replay_matches_reference_for_every_fault() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(23);
        let na = view.assignable().len();
        let v1: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let v2: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        // The 64 reference lanes ride in the low limb of the superword.
        let w1: Vec<Packed256> = v1.iter().map(|&w| Packed256::from_word(w)).collect();
        let w2: Vec<Packed256> = v2.iter().map(|&w| Packed256::from_word(w)).collect();
        let mask = Packed256::mask_lanes(64);
        let mut sim = TransitionSimulator::new(&view);
        for fault in &faults {
            let mut detected = vec![false];
            sim.run_batch(&w1, &w2, mask, std::slice::from_ref(fault), &mut detected);
            let reference = transition_detects_reference(&view, fault, &v1, &v2, !0);
            assert_eq!(detected[0], reference != 0, "{fault:?}");
            // And exact per-lane agreement through the counting path.
            let mut counts = vec![0u32];
            sim.run_batch_counting(&w1, &w2, mask, std::slice::from_ref(fault), &mut counts, 64);
            assert_eq!(counts[0], reference.count_ones(), "{fault:?}");
        }
    }

    #[test]
    fn fault_ordering_is_level_major_and_coverage_invariant() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let ordered = order_transition_faults(view.compiled(), &faults);
        assert_eq!(ordered.len(), faults.len());
        assert!(ordered
            .windows(2)
            .all(|w| view.compiled().level_of(w[0].site.index() as u32)
                <= view.compiled().level_of(w[1].site.index() as u32)));
        let mut rng = Rng::seed_from_u64(61);
        let na = view.assignable().len();
        let patterns: Vec<TransitionPattern> = (0..90)
            .map(|_| TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            })
            .collect();
        let base = simulate_transition_patterns(&view, &faults, &patterns);
        let perm = simulate_transition_patterns(&view, &ordered, &patterns);
        assert_eq!(
            base.iter().filter(|&&d| d).count(),
            perm.iter().filter(|&&d| d).count(),
            "ordering changed total coverage"
        );
    }

    #[test]
    fn dead_cone_sites_are_not_enumerated() {
        // d1 -> d2 is a dangling chain: d2 drives nothing, so neither cell
        // can reach an observation point — no transition faults on either.
        let mut n = Netlist::new("dead");
        let a = n.add_input("a");
        let d1 = n.add_cell("d1", CellKind::Inv, vec![a]);
        n.add_cell("d2", CellKind::Inv, vec![d1]);
        let g = n.add_cell("g", CellKind::Buf, vec![a]);
        n.add_output("y", g);
        let faults = enumerate_transition_faults(&n);
        assert!(faults.iter().all(|f| f.site != d1), "dead cone enumerated");
        assert!(faults.iter().any(|f| f.site == a));
        assert!(faults.iter().any(|f| f.site == g));
    }

    #[test]
    fn observation_reach_includes_flip_flop_d_cones() {
        // h feeds only a flip-flop's D pin: observable at the scan boundary.
        let mut n = Netlist::new("ffobs");
        let a = n.add_input("a");
        let h = n.add_cell("h", CellKind::Inv, vec![a]);
        let ff = n.add_cell("ff", CellKind::Dff, vec![h]);
        let g = n.add_cell("g", CellKind::Buf, vec![ff]);
        n.add_output("y", g);
        let faults = enumerate_transition_faults(&n);
        assert!(faults.iter().any(|f| f.site == h));
        assert!(faults.iter().any(|f| f.site == ff));
    }

    #[test]
    fn chain_collapse_folds_forward_through_buf_and_inv() {
        // a -> inv -> buf -> y: a's faults fold into inv (flipped), inv's
        // into buf (same), buf's are kept (reader is the output marker).
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let i = n.add_cell("i", CellKind::Inv, vec![a]);
        let b = n.add_cell("b", CellKind::Buf, vec![i]);
        n.add_output("y", b);
        let faults = enumerate_transition_faults(&n);
        assert_eq!(faults.len(), 6);
        let collapsed = collapse_transition_faults(&n, &faults);
        assert_eq!(collapsed.len(), 2);
        assert!(collapsed.iter().all(|f| f.site == b));
        // The justifier of a's slow-to-rise is inv's slow-to-fall.
        let fanouts = analysis::FanoutMap::compute(&n);
        let j = transition_collapse_justifier(
            &n,
            &fanouts,
            &TransitionFault {
                site: a,
                kind: TransitionKind::SlowToRise,
            },
        )
        .unwrap();
        assert_eq!(j.site, i);
        assert_eq!(j.kind, TransitionKind::SlowToFall);
    }

    #[test]
    fn gate_dominance_drops_the_matching_polarity_only() {
        // Single-fanout inputs into an AND: the gate's slow-to-rise is
        // dominated by an input's slow-to-rise; its slow-to-fall is kept.
        let mut n = Netlist::new("dom");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::And2, vec![a, b]);
        n.add_output("y", g);
        let faults = enumerate_transition_faults(&n);
        let collapsed = collapse_transition_faults(&n, &faults);
        assert!(!collapsed.contains(&TransitionFault {
            site: g,
            kind: TransitionKind::SlowToRise,
        }));
        assert!(collapsed.contains(&TransitionFault {
            site: g,
            kind: TransitionKind::SlowToFall,
        }));
        // Inputs keep both faults (their reader is a gate, not Buf/Inv).
        for site in [a, b] {
            for kind in [TransitionKind::SlowToRise, TransitionKind::SlowToFall] {
                assert!(collapsed.contains(&TransitionFault { site, kind }));
            }
        }
    }

    #[test]
    fn every_justifier_detection_implies_the_dropped_fault() {
        // Simulation check of the collapsing soundness argument: on a real
        // circuit, any random pair batch detecting a justifier also
        // detects the fault it justified dropping.
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let fanouts = analysis::FanoutMap::compute(&n);
        let mut rng = Rng::seed_from_u64(41);
        let na = view.assignable().len();
        let mut checked = 0;
        for _ in 0..4 {
            let v1: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
            let v2: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
            for fault in &faults {
                let Some(j) = transition_collapse_justifier(&n, &fanouts, fault) else {
                    continue;
                };
                let jd = transition_detects_reference(&view, &j, &v1, &v2, !0);
                let fd = transition_detects_reference(&view, fault, &v1, &v2, !0);
                // Per-lane: a lane detecting the justifier detects the
                // dropped fault (dominance); equivalence is two-sided but
                // satisfies the same inclusion.
                assert_eq!(jd & !fd, 0, "{fault:?} justified by {j:?}");
                checked += 1;
            }
        }
        assert!(checked > 0, "collapsing never fired on the test circuit");
    }

    #[test]
    fn collapsed_campaign_coverage_implies_full_coverage() {
        // ATPG on the collapsed list, resimulate the full list: every
        // fault whose representative chain is covered must be covered.
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let collapsed = collapse_transition_faults(&n, &faults);
        assert!(collapsed.len() < faults.len());
        let result = transition_atpg(&view, &collapsed, &PodemConfig::paper_default(), 9);
        let full = simulate_transition_patterns(&view, &faults, &result.patterns);
        // det-ok: test-only lookup table, keyed reads only, never iterated.
        let by_fault: std::collections::HashMap<TransitionFault, bool> =
            faults.iter().copied().zip(full.iter().copied()).collect();
        for (cf, &cd) in collapsed.iter().zip(&result.detected) {
            if cd {
                assert!(by_fault[cf], "{cf:?} lost by resimulation");
            }
        }
        // Dropped faults whose justifier (transitively, a kept fault) was
        // detected are detected too.
        let fanouts = analysis::FanoutMap::compute(&n);
        for f in &faults {
            let mut cur = *f;
            let mut hops = 0;
            while let Some(j) = transition_collapse_justifier(&n, &fanouts, &cur) {
                cur = j;
                hops += 1;
                assert!(hops < faults.len(), "justifier chain cycled");
            }
            if cur != *f && by_fault[&cur] {
                assert!(by_fault[f], "{f:?} not covered though {cur:?} is");
            }
        }
    }

    #[test]
    fn dropping_across_calls_matches_one_shot_simulation() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(55);
        let na = view.assignable().len();
        let patterns: Vec<TransitionPattern> = (0..192)
            .map(|_| TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            })
            .collect();
        let whole = simulate_transition_patterns(&view, &faults, &patterns);
        let mut drops = flh_exec::DropMask::new(faults.len());
        let mut staged = Vec::new();
        for block in patterns.chunks(80) {
            staged = simulate_transition_patterns_dropping(
                &view,
                &faults,
                block,
                &ThreadPool::new(3),
                &mut drops,
            );
        }
        assert_eq!(staged, whole);
        // Replaying covered patterns reports no new detections.
        let again = TransitionSimulator::simulate_partitioned_dropping(
            &view,
            &faults,
            &patterns,
            &ThreadPool::serial(),
            &mut drops,
        );
        for (s, &d) in again.iter().zip(&whole) {
            assert!(!s.detected || !d, "dropped fault was re-detected");
        }
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let detected = simulate_transition_patterns(&view, &faults, &[]);
        assert!(detected.iter().all(|&d| !d));
    }
}
