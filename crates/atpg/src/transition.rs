//! Transition-delay faults: two-pattern ATPG and pattern-pair simulation.
//!
//! A transition fault (slow-to-rise / slow-to-fall at a stem) is detected
//! by a pattern pair (V1, V2) iff V1 sets the site to the initial value,
//! V2 sets it to the final value, and V2 — viewed as a stuck-at test for
//! the site stuck at the *initial* value — propagates the effect to an
//! observation point. Under enhanced-scan / FLH application V1 and V2 are
//! arbitrary, so ATPG decomposes into a PODEM stuck-at test for V2 plus a
//! justification for V1 — precisely why the paper's technique, which
//! enables arbitrary pairs cheaply, preserves full ATPG power.

use flh_exec::ThreadPool;
use flh_netlist::{analysis, CellId, CellKind, Netlist};
use flh_rng::Rng;

use crate::fault::{Fault, StuckValue};
use crate::fsim::{ConeArena, FaultStats};
use crate::podem::{Podem, PodemConfig};
use crate::tview::TestView;

/// Transition polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// The rising edge at the site is too slow (tested by launching 0→1).
    SlowToRise,
    /// The falling edge is too slow (tested by launching 1→0).
    SlowToFall,
}

/// A transition-delay fault at a stem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// The faulted line's driver.
    pub site: CellId,
    /// Polarity.
    pub kind: TransitionKind,
}

impl TransitionFault {
    /// Initial (V1) value the site must take.
    pub fn initial_value(&self) -> bool {
        self.kind == TransitionKind::SlowToFall
    }

    /// Final (V2) value the site must take.
    pub fn final_value(&self) -> bool {
        !self.initial_value()
    }

    /// The stuck-at fault V2 must detect (site stuck at the initial value).
    pub fn stuck_equivalent(&self) -> Fault {
        let stuck = if self.initial_value() {
            StuckValue::One
        } else {
            StuckValue::Zero
        };
        Fault::stem(self.site, stuck)
    }
}

/// Enumerates both transition faults on every stem with at least one
/// reader (combinational cells, primary inputs, flip-flop outputs).
pub fn enumerate_transition_faults(netlist: &Netlist) -> Vec<TransitionFault> {
    let fanouts = analysis::FanoutMap::compute(netlist);
    let mut faults = Vec::new();
    for (id, cell) in netlist.iter() {
        if cell.kind() == CellKind::Output || fanouts.fanout_count(id) == 0 {
            continue;
        }
        faults.push(TransitionFault {
            site: id,
            kind: TransitionKind::SlowToRise,
        });
        faults.push(TransitionFault {
            site: id,
            kind: TransitionKind::SlowToFall,
        });
    }
    faults
}

/// A fully specified two-pattern test in assignable order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionPattern {
    /// Initialization pattern.
    pub v1: Vec<bool>,
    /// Launch pattern.
    pub v2: Vec<bool>,
}

/// Cone-cached transition fault simulator over a test view.
///
/// Like [`crate::fsim::StuckSimulator`], it walks the view's compiled
/// circuit: cones are interned index ranges in a shared [`ConeArena`], and
/// the faulty V2 machine is replayed in place under an undo log instead of
/// cloning the good value array per fault.
pub struct TransitionSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    cones: ConeArena,
    /// Good V2 values, reused across batches; faulty resimulation mutates
    /// it in place under `undo`.
    values2: Vec<u64>,
    /// Good V1 values (never mutated per fault).
    values1: Vec<u64>,
    undo: Vec<(u32, u64)>,
}

impl<'v, 'a> TransitionSimulator<'v, 'a> {
    /// Builds a simulator.
    pub fn new(view: &'v TestView<'a>) -> Self {
        TransitionSimulator {
            view,
            cones: ConeArena::new(),
            values2: Vec::new(),
            values1: Vec::new(),
            undo: Vec::new(),
        }
    }

    /// In-place cone replay of the V2 machine under `fault`'s stuck
    /// equivalent; returns the observation miscompare word and leaves
    /// `values2` restored to the good machine.
    fn faulty_miscompare(&mut self, fault: &TransitionFault) -> u64 {
        let compiled = self.view.compiled();
        let observed = self.view.observed_drivers();
        let seed = fault.site.index() as u32;
        let stuck = fault.stuck_equivalent();
        self.undo.clear();
        let mut miscompare = 0u64;
        let old = self.values2[seed as usize];
        let new = stuck.stuck.word();
        if old != new {
            self.undo.push((seed, old));
            self.values2[seed as usize] = new;
            if observed[seed as usize] {
                miscompare |= old ^ new;
            }
        }
        let mut inputs: Vec<u64> = Vec::with_capacity(8);
        for &id in self.cones.cone(compiled, seed) {
            if id == seed {
                continue; // stem value is forced, not re-evaluated
            }
            let kind = compiled.kind(id);
            if kind.is_flip_flop() {
                continue; // sequential boundary: D observed, Q untouched
            }
            inputs.clear();
            inputs.extend(compiled.fanin(id).iter().map(|&x| self.values2[x as usize]));
            let old = self.values2[id as usize];
            let new = kind.eval64(&inputs);
            if old != new {
                self.undo.push((id, old));
                self.values2[id as usize] = new;
                if observed[id as usize] {
                    miscompare |= old ^ new;
                }
            }
        }
        for &(id, old) in &self.undo {
            self.values2[id as usize] = old;
        }
        miscompare
    }

    /// Simulates up to 64 pattern pairs against a fault set, marking newly
    /// detected faults in `detected` (fault-dropping style). Returns the
    /// number of new detections.
    ///
    /// `v1_words[i]` / `v2_words[i]` carry one bit per pair for assignable
    /// `i`; `active_mask` limits which bit lanes hold real pairs.
    pub fn run_batch(
        &mut self,
        v1_words: &[u64],
        v2_words: &[u64],
        active_mask: u64,
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        let (view, values1, values2) = (self.view, &mut self.values1, &mut self.values2);
        view.eval64_into(v1_words, None, values1);
        view.eval64_into(v2_words, None, values2);
        let mut new_hits = 0;

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let lanes = self.activation_lanes(fault) & active_mask;
            if lanes == 0 {
                continue;
            }
            if self.faulty_miscompare(fault) & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }

    /// Lanes where V1 sets the initial value and V2 the final value at the
    /// fault site.
    fn activation_lanes(&self, fault: &TransitionFault) -> u64 {
        let site = fault.site.index();
        let init_mask = if fault.initial_value() {
            self.values1[site]
        } else {
            !self.values1[site]
        };
        let launch_mask = if fault.final_value() {
            self.values2[site]
        } else {
            !self.values2[site]
        };
        init_mask & launch_mask
    }

    /// Like [`TransitionSimulator::run_batch`], but counts *how many*
    /// distinct pattern lanes detect each fault (saturating at `target`),
    /// for N-detect test generation. Returns the number of faults that
    /// reached `target` in this batch.
    pub fn run_batch_counting(
        &mut self,
        v1_words: &[u64],
        v2_words: &[u64],
        active_mask: u64,
        faults: &[TransitionFault],
        counts: &mut [u32],
        target: u32,
    ) -> usize {
        let (view, values1, values2) = (self.view, &mut self.values1, &mut self.values2);
        view.eval64_into(v1_words, None, values1);
        view.eval64_into(v2_words, None, values2);
        let mut newly_saturated = 0;

        for (fi, fault) in faults.iter().enumerate() {
            if counts[fi] >= target {
                continue;
            }
            let lanes = self.activation_lanes(fault) & active_mask;
            if lanes == 0 {
                continue;
            }
            let hits = (self.faulty_miscompare(fault) & lanes).count_ones();
            if hits > 0 {
                let before = counts[fi];
                counts[fi] = (counts[fi] + hits).min(target);
                if before < target && counts[fi] >= target {
                    newly_saturated += 1;
                }
            }
        }
        newly_saturated
    }
}

/// Packs up to 64 pattern pairs into per-assignable words and returns the
/// active lane mask.
fn pack_pair_batch(
    chunk: &[TransitionPattern],
    n: usize,
    v1_words: &mut [u64],
    v2_words: &mut [u64],
) -> u64 {
    v1_words.fill(0);
    v2_words.fill(0);
    for (lane, p) in chunk.iter().enumerate() {
        for i in 0..n {
            if p.v1[i] {
                v1_words[i] |= 1 << lane;
            }
            if p.v2[i] {
                v2_words[i] |= 1 << lane;
            }
        }
    }
    if chunk.len() == 64 {
        !0
    } else {
        (1u64 << chunk.len()) - 1
    }
}

/// One worker's share of a partitioned pair campaign: a fresh simulator,
/// the full pattern-pair set, a contiguous fault shard.
fn pair_stats_shard(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
) -> Vec<FaultStats> {
    let mut sim = TransitionSimulator::new(view);
    let mut detected = vec![false; faults.len()];
    let mut stats = vec![FaultStats::default(); faults.len()];
    let n = view.assignable().len();
    let mut v1_words = vec![0u64; n];
    let mut v2_words = vec![0u64; n];
    for (batch, chunk) in patterns.chunks(64).enumerate() {
        let mask = pack_pair_batch(chunk, n, &mut v1_words, &mut v2_words);
        let new_hits = sim.run_batch(&v1_words, &v2_words, mask, faults, &mut detected);
        if new_hits > 0 {
            for (s, &d) in stats.iter_mut().zip(&detected) {
                if d && !s.detected {
                    s.detected = true;
                    s.first_batch = Some(batch as u32);
                }
            }
        }
    }
    stats
}

impl TransitionSimulator<'_, '_> {
    /// Partitioned pattern-pair campaign: one contiguous fault shard per
    /// pool worker, each on its own simulator, per-fault stats merged **by
    /// fault id** (contiguous ascending shards, concatenated in partition
    /// order — never completion order). Bit-identical at any pool size.
    pub fn simulate_partitioned(
        view: &TestView<'_>,
        faults: &[TransitionFault],
        patterns: &[TransitionPattern],
        pool: &ThreadPool,
    ) -> Vec<FaultStats> {
        let parts = pool.run_partitioned(faults.len(), |range| {
            pair_stats_shard(view, &faults[range], patterns)
        });
        let mut stats = Vec::with_capacity(faults.len());
        for (_, shard) in parts {
            stats.extend(shard);
        }
        stats
    }
}

/// Simulates a pattern-pair set against a fault list, returning per-fault
/// detection flags. Serial ([`ThreadPool::serial`]) case of
/// [`simulate_transition_patterns_partitioned`].
pub fn simulate_transition_patterns(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
) -> Vec<bool> {
    simulate_transition_patterns_partitioned(view, faults, patterns, &ThreadPool::serial())
}

/// Pooled [`simulate_transition_patterns`]: faults sharded over the pool,
/// detection flags merged in fault-id order, identical at any pool size.
pub fn simulate_transition_patterns_partitioned(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
    pool: &ThreadPool,
) -> Vec<bool> {
    TransitionSimulator::simulate_partitioned(view, faults, patterns, pool)
        .into_iter()
        .map(|s| s.detected)
        .collect()
}

/// Result of a deterministic transition ATPG run.
#[derive(Clone, Debug)]
pub struct TransitionAtpgResult {
    /// Generated pattern pairs.
    pub patterns: Vec<TransitionPattern>,
    /// Per-fault detection flags (aligned with the input fault list).
    pub detected: Vec<bool>,
    /// Faults proven or declared untestable / aborted by PODEM.
    pub untestable: usize,
}

impl TransitionAtpgResult {
    /// Detected-fault count.
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Fault coverage in percent (detected / total).
    pub fn coverage_pct(&self) -> f64 {
        if self.detected.is_empty() {
            100.0
        } else {
            100.0 * self.detected_count() as f64 / self.detected.len() as f64
        }
    }

    /// Fault efficiency in percent ((detected + untestable) / total).
    pub fn efficiency_pct(&self) -> f64 {
        if self.detected.is_empty() {
            100.0
        } else {
            100.0 * (self.detected_count() + self.untestable) as f64 / self.detected.len() as f64
        }
    }
}

/// Deterministic two-pattern transition ATPG with fault dropping, assuming
/// arbitrary (enhanced-scan / FLH) pattern application.
///
/// For each undetected fault: PODEM generates V2 as a stuck-at test for the
/// site, V1 as a justification of the launch value; don't-cares are filled
/// randomly (seeded) and the new pair is fault-simulated against all
/// remaining faults.
pub fn transition_atpg(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    config: &PodemConfig,
    seed: u64,
) -> TransitionAtpgResult {
    let podem = Podem::new(view, config.clone());
    let mut rng = Rng::seed_from_u64(seed);
    let mut detected = vec![false; faults.len()];
    let mut untestable = 0usize;
    let mut patterns = Vec::new();
    let mut sim = TransitionSimulator::new(view);
    let n = view.assignable().len();

    for fi in 0..faults.len() {
        if detected[fi] {
            continue;
        }
        let fault = faults[fi];
        let v2_cube = match podem.generate(&fault.stuck_equivalent()) {
            Some(c) => c,
            None => {
                untestable += 1;
                continue;
            }
        };
        let v1_cube = match podem.justify(fault.site, fault.initial_value()) {
            Some(c) => c,
            None => {
                untestable += 1;
                continue;
            }
        };
        let pattern = TransitionPattern {
            v1: v1_cube.fill_random(&mut rng),
            v2: v2_cube.fill_random(&mut rng),
        };
        // Simulate the new pair against every remaining fault.
        let mut v1_words = vec![0u64; n];
        let mut v2_words = vec![0u64; n];
        for i in 0..n {
            v1_words[i] = if pattern.v1[i] { !0 } else { 0 };
            v2_words[i] = if pattern.v2[i] { !0 } else { 0 };
        }
        sim.run_batch(&v1_words, &v2_words, 1, faults, &mut detected);
        debug_assert!(detected[fi], "generated pair must detect its target");
        detected[fi] = true;
        patterns.push(pattern);
    }

    TransitionAtpgResult {
        patterns,
        detected,
        untestable,
    }
}

/// Result of N-detect transition ATPG.
#[derive(Clone, Debug)]
pub struct NDetectResult {
    /// Generated pattern pairs.
    pub patterns: Vec<TransitionPattern>,
    /// Detection count per fault (saturated at the requested N).
    pub counts: Vec<u32>,
    /// Faults PODEM proved or abandoned as untestable.
    pub untestable: usize,
}

impl NDetectResult {
    /// Faults detected at least `n` times.
    pub fn fully_detected(&self, n: u32) -> usize {
        self.counts.iter().filter(|&&c| c >= n).count()
    }

    /// N-detect coverage in percent.
    pub fn coverage_pct(&self, n: u32) -> f64 {
        if self.counts.is_empty() {
            100.0
        } else {
            100.0 * self.fully_detected(n) as f64 / self.counts.len() as f64
        }
    }
}

/// N-detect transition ATPG: every fault is targeted until it has been
/// detected by `n` *distinct* pattern pairs. Diversity comes from the
/// random fill of PODEM's don't-cares (the specified cube per fault is
/// deterministic), which is the standard low-cost approximation of
/// path-diverse N-detect; identical consecutive fills terminate the
/// per-fault loop early.
pub fn transition_atpg_ndetect(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    config: &PodemConfig,
    seed: u64,
    n: u32,
) -> NDetectResult {
    assert!(n >= 1, "n-detect needs n >= 1");
    let podem = Podem::new(view, config.clone());
    let mut rng = Rng::seed_from_u64(seed);
    let mut counts = vec![0u32; faults.len()];
    let mut untestable = 0usize;
    let mut patterns: Vec<TransitionPattern> = Vec::new();
    let mut sim = TransitionSimulator::new(view);
    let na = view.assignable().len();

    for fi in 0..faults.len() {
        if counts[fi] >= n {
            continue;
        }
        let fault = faults[fi];
        let Some(v2_cube) = podem.generate(&fault.stuck_equivalent()) else {
            untestable += 1;
            continue;
        };
        let Some(v1_cube) = podem.justify(fault.site, fault.initial_value()) else {
            untestable += 1;
            continue;
        };
        let mut last: Option<TransitionPattern> = None;
        let mut attempts = 0u32;
        while counts[fi] < n && attempts < 3 * n {
            attempts += 1;
            let pattern = TransitionPattern {
                v1: v1_cube.fill_random(&mut rng),
                v2: v2_cube.fill_random(&mut rng),
            };
            if last.as_ref() == Some(&pattern) {
                // Fully specified cube: no diversity left; count it once.
                counts[fi] = counts[fi].max(1);
                break;
            }
            let mut v1_words = vec![0u64; na];
            let mut v2_words = vec![0u64; na];
            for i in 0..na {
                v1_words[i] = if pattern.v1[i] { !0 } else { 0 };
                v2_words[i] = if pattern.v2[i] { !0 } else { 0 };
            }
            sim.run_batch_counting(&v1_words, &v2_words, 1, faults, &mut counts, n);
            last = Some(pattern.clone());
            patterns.push(pattern);
        }
    }

    NDetectResult {
        patterns,
        counts,
        untestable,
    }
}

/// Static (reverse-order) compaction of a transition test set: patterns
/// are re-fault-simulated in reverse generation order and kept only if
/// they detect a fault nothing later in the pass has covered. The
/// compacted set provably preserves coverage (verified by the caller's
/// tests via resimulation) and is typically 20-50 % smaller, reducing the
/// scan-in time that dominates two-pattern test application.
pub fn compact_transition_patterns(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[TransitionPattern],
) -> Vec<TransitionPattern> {
    let mut sim = TransitionSimulator::new(view);
    let mut detected = vec![false; faults.len()];
    let n = view.assignable().len();
    let mut kept: Vec<TransitionPattern> = Vec::new();
    for pattern in patterns.iter().rev() {
        let mut v1 = vec![0u64; n];
        let mut v2 = vec![0u64; n];
        for i in 0..n {
            v1[i] = if pattern.v1[i] { !0 } else { 0 };
            v2[i] = if pattern.v2[i] { !0 } else { 0 };
        }
        if sim.run_batch(&v1, &v2, 1, faults, &mut detected) > 0 {
            kept.push(pattern.clone());
        }
    }
    kept.reverse();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn small() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "tfsmall".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 6,
            gates: 50,
            logic_depth: 6,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 77,
        })
        .unwrap()
    }

    #[test]
    fn fault_model_basics() {
        let f = TransitionFault {
            site: flh_netlist::CellId::from_index(3),
            kind: TransitionKind::SlowToRise,
        };
        assert!(!f.initial_value());
        assert!(f.final_value());
        assert_eq!(f.stuck_equivalent().stuck, StuckValue::Zero);
        let f = TransitionFault {
            kind: TransitionKind::SlowToFall,
            ..f
        };
        assert_eq!(f.stuck_equivalent().stuck, StuckValue::One);
    }

    #[test]
    fn enumeration_covers_stems_twice() {
        let n = small();
        let faults = enumerate_transition_faults(&n);
        assert!(faults.len() > 2 * n.gate_count() / 2);
        assert_eq!(faults.len() % 2, 0);
    }

    #[test]
    fn atpg_reaches_high_coverage_with_arbitrary_pairs() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let result = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 9);
        assert!(
            result.coverage_pct() > 85.0,
            "coverage {}",
            result.coverage_pct()
        );
        assert!(result.efficiency_pct() > 95.0);
        // Fault dropping keeps the set compact.
        assert!(result.patterns.len() < faults.len() / 2);
    }

    #[test]
    fn atpg_patterns_reproduce_coverage_when_resimulated() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let result = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 9);
        let resim = simulate_transition_patterns(&view, &faults, &result.patterns);
        let resim_count = resim.iter().filter(|&&d| d).count();
        assert_eq!(resim_count, result.detected_count());
    }

    #[test]
    fn batch_and_serial_simulation_agree() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(4);
        let na = view.assignable().len();
        let patterns: Vec<TransitionPattern> = (0..100)
            .map(|_| TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            })
            .collect();
        let batch = simulate_transition_patterns(&view, &faults, &patterns);
        // Serial: one pattern at a time.
        let mut serial = vec![false; faults.len()];
        for p in &patterns {
            let d = simulate_transition_patterns(&view, &faults, std::slice::from_ref(p));
            for (s, d) in serial.iter_mut().zip(d) {
                *s |= d;
            }
        }
        assert_eq!(batch, serial);
    }

    #[test]
    fn partitioned_pair_simulation_matches_serial() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(19);
        let na = view.assignable().len();
        let patterns: Vec<TransitionPattern> = (0..130)
            .map(|_| TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            })
            .collect();
        let serial = TransitionSimulator::simulate_partitioned(
            &view,
            &faults,
            &patterns,
            &ThreadPool::serial(),
        );
        let flags = simulate_transition_patterns(&view, &faults, &patterns);
        for (s, &d) in serial.iter().zip(&flags) {
            assert_eq!(s.detected, d);
            assert_eq!(s.first_batch.is_some(), d);
        }
        for workers in [2, 4, 8] {
            let pooled = TransitionSimulator::simulate_partitioned(
                &view,
                &faults,
                &patterns,
                &ThreadPool::new(workers),
            );
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn ndetect_reaches_higher_multiplicity() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let cfg = PodemConfig::paper_default();
        let one = transition_atpg(&view, &faults, &cfg, 9);
        let three = transition_atpg_ndetect(&view, &faults, &cfg, 9, 3);
        // 1-detect coverage matches the plain generator's detections.
        assert_eq!(
            three.coverage_pct(1),
            100.0 * one.detected_count() as f64 / faults.len() as f64
        );
        // Most detected faults reach multiplicity 3 through fill diversity.
        assert!(
            three.fully_detected(3) as f64 >= 0.5 * one.detected_count() as f64,
            "only {}/{} reached 3-detect",
            three.fully_detected(3),
            one.detected_count()
        );
        // And it costs more patterns than single-detect.
        assert!(three.patterns.len() > one.patterns.len());
        // Resimulation confirms every counted fault is genuinely detected.
        let resim = simulate_transition_patterns(&view, &faults, &three.patterns);
        for (fi, &d) in resim.iter().enumerate() {
            assert_eq!(d, three.counts[fi] > 0, "fault {fi}");
        }
    }

    #[test]
    fn ndetect_with_n1_equals_plain_coverage() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let cfg = PodemConfig::paper_default();
        let plain = transition_atpg(&view, &faults, &cfg, 4);
        let nd = transition_atpg_ndetect(&view, &faults, &cfg, 4, 1);
        assert_eq!(nd.fully_detected(1), plain.detected_count());
        assert_eq!(nd.untestable, plain.untestable);
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks_the_set() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        // A deliberately redundant set: ATPG patterns plus random filler.
        let atpg = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 9);
        let mut rng = Rng::seed_from_u64(77);
        let na = view.assignable().len();
        let mut patterns = atpg.patterns.clone();
        for _ in 0..100 {
            patterns.push(TransitionPattern {
                v1: (0..na).map(|_| rng.gen()).collect(),
                v2: (0..na).map(|_| rng.gen()).collect(),
            });
        }
        let before = simulate_transition_patterns(&view, &faults, &patterns);
        let compacted = compact_transition_patterns(&view, &faults, &patterns);
        let after = simulate_transition_patterns(&view, &faults, &compacted);
        assert_eq!(before, after, "compaction changed coverage");
        assert!(
            compacted.len() < patterns.len(),
            "no compaction achieved: {} -> {}",
            patterns.len(),
            compacted.len()
        );
        // Every kept pattern appears in the original set.
        for p in &compacted {
            assert!(patterns.contains(p));
        }
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let n = small();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let detected = simulate_transition_patterns(&view, &faults, &[]);
        assert!(detected.iter().all(|&d| !d));
    }
}
