//! Plain-text interchange for two-pattern test sets.
//!
//! A deliberately simple line format (one `V1:V2` pair per line, `0`/`1`
//! characters in `TestView` assignable order — primary inputs first, then
//! chain state) so pattern sets survive round trips through files, diffs
//! and scripts:
//!
//! ```text
//! # flh two-pattern set: 3 PI + 4 state bits
//! 101_0110:111_0001
//! 010_1100:000_1111
//! ```
//!
//! The `_` separator between the PI part and the state part is optional on
//! input and always written on output.

use flh_netlist::NetlistError;

use crate::transition::TransitionPattern;

/// Serializes a pattern set.
pub fn write_patterns(patterns: &[TransitionPattern], primary_inputs: usize) -> String {
    let mut out = String::new();
    if let Some(first) = patterns.first() {
        out.push_str(&format!(
            "# flh two-pattern set: {} PI + {} state bits, {} pairs\n",
            primary_inputs,
            first.v1.len() - primary_inputs,
            patterns.len()
        ));
    }
    let side = |bits: &[bool]| -> String {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| {
                let c = if b { '1' } else { '0' };
                if i == primary_inputs && primary_inputs > 0 {
                    format!("_{c}")
                } else {
                    c.to_string()
                }
            })
            .collect()
    };
    for p in patterns {
        out.push_str(&side(&p.v1));
        out.push(':');
        out.push_str(&side(&p.v2));
        out.push('\n');
    }
    out
}

/// Parses a pattern set. Lines starting with `#` and blank lines are
/// ignored; `_` separators are cosmetic.
///
/// # Errors
///
/// Returns a line-numbered [`NetlistError::PatternSyntax`] for malformed
/// lines or inconsistent pattern widths, so front ends report malformed
/// input files as diagnostics instead of aborting.
pub fn parse_patterns(text: &str) -> Result<Vec<TransitionPattern>, NetlistError> {
    let mut patterns = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let syntax = |message: String| NetlistError::PatternSyntax {
            line: lineno + 1,
            message,
        };
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (left, right) = line
            .split_once(':')
            .ok_or_else(|| syntax("missing ':' between V1 and V2".into()))?;
        let bits = |s: &str| -> Result<Vec<bool>, NetlistError> {
            s.chars()
                .filter(|&c| c != '_')
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(syntax(format!("bad bit {other:?}"))),
                })
                .collect()
        };
        let v1 = bits(left)?;
        let v2 = bits(right)?;
        if v1.len() != v2.len() {
            return Err(syntax("V1/V2 width mismatch".into()));
        }
        match width {
            None => width = Some(v1.len()),
            Some(w) if w != v1.len() => {
                return Err(syntax(format!(
                    "inconsistent width: expected {w}, found {}",
                    v1.len()
                )))
            }
            _ => {}
        }
        patterns.push(TransitionPattern { v1, v2 });
    }
    Ok(patterns)
}

/// Reads and parses a pattern file.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] when the file cannot be read and
/// propagates [`parse_patterns`] errors otherwise.
pub fn read_patterns_file(
    path: impl AsRef<std::path::Path>,
) -> Result<Vec<TransitionPattern>, NetlistError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| NetlistError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_patterns(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TransitionPattern> {
        vec![
            TransitionPattern {
                v1: vec![true, false, true, true],
                v2: vec![false, false, true, false],
            },
            TransitionPattern {
                v1: vec![false, true, false, false],
                v2: vec![true, true, true, true],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let patterns = sample();
        let text = write_patterns(&patterns, 2);
        let parsed = parse_patterns(&text).unwrap();
        assert_eq!(parsed, patterns);
    }

    #[test]
    fn separators_and_comments_are_cosmetic() {
        let parsed =
            parse_patterns("# header\n\n10_11:00_10\n\n# mid comment\n01_00:11_11\n").unwrap();
        assert_eq!(parsed, sample());
        // Spaces inside the bit strings are rejected.
        assert!(parse_patterns("10 11:00 10\n").is_err());
    }

    #[test]
    fn errors_are_typed_and_carry_line_numbers() {
        let err = |text: &str| match parse_patterns(text) {
            Err(NetlistError::PatternSyntax { line, message }) => (line, message),
            other => panic!("expected PatternSyntax, got {other:?}"),
        };
        assert_eq!(err("1011\n").0, 1);
        assert!(err("10:1\n").1.contains("width"));
        assert!(err("1x:10\n").1.contains("bad bit"));
        let (line, message) = err("10:10\n1:1\n");
        assert_eq!(line, 2);
        assert!(message.contains("inconsistent"));
    }

    #[test]
    fn missing_pattern_file_is_a_typed_io_error() {
        match read_patterns_file("/nonexistent/definitely_missing.tp") {
            Err(NetlistError::Io { path, .. }) => assert!(path.contains("missing")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_empty_set() {
        assert!(parse_patterns("# nothing\n").unwrap().is_empty());
        assert_eq!(write_patterns(&[], 3), "");
    }

    #[test]
    fn round_trip_preserves_pairs_at_every_chunk_size() {
        // Set sizes straddling the 64-lane batch boundary, so partial
        // final chunks go through the same write → read → simulate path
        // as full ones.
        use crate::transition::{enumerate_transition_faults, simulate_transition_patterns};
        use crate::tview::TestView;
        use flh_netlist::{generate_circuit, GeneratorConfig};
        use flh_rng::Rng;

        let n = generate_circuit(&GeneratorConfig {
            name: "pio".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 6,
            gates: 50,
            logic_depth: 6,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 303,
        })
        .unwrap();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let na = view.assignable().len();
        let n_pi = view.primary_input_count();
        let mut rng = Rng::seed_from_u64(17);
        for size in [1usize, 63, 64, 65, 130] {
            let patterns: Vec<TransitionPattern> = (0..size)
                .map(|_| TransitionPattern {
                    v1: (0..na).map(|_| rng.gen()).collect(),
                    v2: (0..na).map(|_| rng.gen()).collect(),
                })
                .collect();
            let text = write_patterns(&patterns, n_pi);
            let parsed = parse_patterns(&text).unwrap();
            assert_eq!(parsed, patterns, "size = {size}");
            // Round-tripped pairs drive identical coverage.
            let before = simulate_transition_patterns(&view, &faults, &patterns);
            let after = simulate_transition_patterns(&view, &faults, &parsed);
            assert_eq!(before, after, "size = {size}");
        }
    }
}
