//! Path-delay fault model: structural path enumeration, non-robust
//! two-pattern test generation and verification.
//!
//! The paper (Section IV) notes that under FLH "the conventional stuck-at
//! fault model, transition and path delay fault models remain valid". A
//! path-delay fault says the *cumulative* delay along one specific
//! combinational path exceeds the clock; testing it needs a transition
//! launched at the path input and every off-path (side) input of every
//! on-path gate held at its non-controlling value under V2 (the
//! *non-robust* sensitization criterion). Arbitrary two-pattern
//! application — enhanced scan or FLH — is exactly what makes these V1/V2
//! pairs realizable.

use flh_netlist::{analysis, CellId, CellKind, Netlist};
use flh_rng::Rng;

use crate::podem::{Podem, PodemConfig};
use crate::transition::TransitionPattern;
use crate::tview::TestView;

/// A structural combinational path: a source (primary input or flip-flop
/// output) followed by the on-path gates, in order. The last cell drives an
/// observation point (primary output or flip-flop D).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StructuralPath {
    cells: Vec<CellId>,
}

impl StructuralPath {
    /// Builds a path from an explicit cell sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is shorter than two cells or consecutive
    /// cells are not connected.
    pub fn new(netlist: &Netlist, cells: Vec<CellId>) -> Self {
        assert!(cells.len() >= 2, "a path needs a source and a gate");
        for w in cells.windows(2) {
            assert!(
                netlist.cell(w[1]).fanin().contains(&w[0]),
                "{} does not feed {}",
                netlist.cell(w[0]).name(),
                netlist.cell(w[1]).name()
            );
        }
        StructuralPath { cells }
    }

    /// Source cell (primary input or flip-flop).
    pub fn source(&self) -> CellId {
        self.cells[0]
    }

    /// On-path cells including the source.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of gates on the path (excluding the source).
    pub fn length(&self) -> usize {
        self.cells.len() - 1
    }

    /// Whether the path inverts (odd number of inverting gates).
    pub fn inverts(&self, netlist: &Netlist) -> bool {
        self.cells[1..]
            .iter()
            .filter(|&&c| kind_inverts(netlist.cell(c).kind()))
            .count()
            % 2
            == 1
    }
}

fn kind_inverts(kind: CellKind) -> bool {
    use CellKind::*;
    matches!(
        kind,
        Inv | Nand2
            | Nand3
            | Nand4
            | Nor2
            | Nor3
            | Nor4
            | Xnor2
            | Aoi21
            | Aoi22
            | Oai21
            | Oai22
            | NandN(_)
            | NorN(_)
    )
}

/// A path-delay fault: a path plus the launch polarity at its source.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathDelayFault {
    /// The path under test.
    pub path: StructuralPath,
    /// `true` = rising launch at the source (V1: 0 → V2: 1).
    pub rising_launch: bool,
}

/// Enumerates, for every observation endpoint, the structurally longest
/// path feeding it (ties broken deterministically), and returns the `k`
/// longest overall — the classic critical-path set for path-delay testing.
pub fn longest_paths(netlist: &Netlist, k: usize) -> Vec<StructuralPath> {
    let lv = match analysis::Levelization::compute(netlist) {
        Ok(lv) => lv,
        Err(_) => return Vec::new(),
    };
    let mut paths = Vec::new();
    let endpoints: Vec<CellId> = netlist
        .outputs()
        .iter()
        .chain(netlist.flip_flops())
        .map(|&o| netlist.cell(o).fanin()[0])
        .collect();
    // det-ok: membership test only; endpoint order drives iteration.
    let mut seen = std::collections::HashSet::new();
    for tail in endpoints {
        if !netlist.cell(tail).kind().is_combinational() || !seen.insert(tail) {
            continue;
        }
        // Walk back through the deepest fanin until a source.
        let mut cells = vec![tail];
        let mut cursor = tail;
        loop {
            let cell = netlist.cell(cursor);
            let kind = cell.kind();
            if !kind.is_combinational() || cell.fanin().is_empty() {
                break;
            }
            let &deepest = cell
                .fanin()
                .iter()
                .max_by_key(|&&f| (lv.level(f), std::cmp::Reverse(f)))
                .expect("nonempty fanin");
            cells.push(deepest);
            cursor = deepest;
            let ck = netlist.cell(cursor).kind();
            if ck == CellKind::Input || ck.is_flip_flop() {
                break;
            }
        }
        cells.reverse();
        // Drop paths that do not start at a launchable source.
        let src_kind = netlist.cell(cells[0]).kind();
        if cells.len() >= 2 && (src_kind == CellKind::Input || src_kind.is_flip_flop()) {
            paths.push(StructuralPath::new(netlist, cells));
        }
    }
    paths.sort_by_key(|p| std::cmp::Reverse(p.length()));
    paths.truncate(k);
    paths
}

/// Off-path side-input constraint *alternatives* for non-robust
/// sensitization of `gate` when the path enters through `on_pin`. Each
/// inner vector is one sufficient constraint set (disjunctive choices on
/// AOI/OAI gates yield several). Returns `None` when the gate cannot be
/// sensitized with single-value constraints (MUX select on-path).
///
/// XOR-family side inputs carry *no* constraint: an XOR output depends on
/// every input unconditionally, so a transition propagates regardless of
/// the side value — the non-robust criterion is free there.
#[allow(clippy::type_complexity)]
fn side_constraints(
    netlist: &Netlist,
    gate: CellId,
    on_pin: usize,
) -> Option<Vec<Vec<(CellId, bool)>>> {
    use CellKind::*;
    let cell = netlist.cell(gate);
    let kind = cell.kind();
    let pin_cell = |p: usize| cell.fanin()[p];
    let others = || -> Vec<usize> { (0..cell.fanin().len()).filter(|&p| p != on_pin).collect() };
    let all_at = |v: bool| -> Vec<Vec<(CellId, bool)>> {
        vec![others().into_iter().map(|p| (pin_cell(p), v)).collect()]
    };
    let one = |cs: Vec<(CellId, bool)>| -> Vec<Vec<(CellId, bool)>> { vec![cs] };
    match kind {
        Inv | Buf | HoldLatch | HoldMux | Output | Dff | ScanDff => Some(vec![Vec::new()]),
        And2 | And3 | And4 | Nand2 | Nand3 | Nand4 | AndN(_) | NandN(_) => Some(all_at(true)),
        Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4 | OrN(_) | NorN(_) => Some(all_at(false)),
        Xor2 | Xnor2 | XorN(_) => Some(vec![Vec::new()]),
        Aoi21 => Some(match on_pin {
            0 => one(vec![(pin_cell(1), true), (pin_cell(2), false)]),
            1 => one(vec![(pin_cell(0), true), (pin_cell(2), false)]),
            // Kill the AND term through either of its inputs.
            _ => vec![vec![(pin_cell(0), false)], vec![(pin_cell(1), false)]],
        }),
        Oai21 => Some(match on_pin {
            0 => one(vec![(pin_cell(1), false), (pin_cell(2), true)]),
            1 => one(vec![(pin_cell(0), false), (pin_cell(2), true)]),
            _ => vec![vec![(pin_cell(0), true)], vec![(pin_cell(1), true)]],
        }),
        Aoi22 => Some(match on_pin {
            0 => vec![
                vec![(pin_cell(1), true), (pin_cell(2), false)],
                vec![(pin_cell(1), true), (pin_cell(3), false)],
            ],
            1 => vec![
                vec![(pin_cell(0), true), (pin_cell(2), false)],
                vec![(pin_cell(0), true), (pin_cell(3), false)],
            ],
            2 => vec![
                vec![(pin_cell(3), true), (pin_cell(0), false)],
                vec![(pin_cell(3), true), (pin_cell(1), false)],
            ],
            _ => vec![
                vec![(pin_cell(2), true), (pin_cell(0), false)],
                vec![(pin_cell(2), true), (pin_cell(1), false)],
            ],
        }),
        Oai22 => Some(match on_pin {
            0 => vec![
                vec![(pin_cell(1), false), (pin_cell(2), true)],
                vec![(pin_cell(1), false), (pin_cell(3), true)],
            ],
            1 => vec![
                vec![(pin_cell(0), false), (pin_cell(2), true)],
                vec![(pin_cell(0), false), (pin_cell(3), true)],
            ],
            2 => vec![
                vec![(pin_cell(3), false), (pin_cell(0), true)],
                vec![(pin_cell(3), false), (pin_cell(1), true)],
            ],
            _ => vec![
                vec![(pin_cell(2), false), (pin_cell(0), true)],
                vec![(pin_cell(2), false), (pin_cell(1), true)],
            ],
        }),
        Mux2 => match on_pin {
            0 => Some(one(vec![(pin_cell(2), false)])),
            1 => Some(one(vec![(pin_cell(2), true)])),
            _ => None, // select on-path: needs a != b, not expressible here
        },
        Input | Const0 | Const1 => Some(vec![Vec::new()]),
    }
}

/// Result of non-robust path-delay test generation for one fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathTestOutcome {
    /// A (V1, V2) pair sensitizing the path non-robustly.
    Tested(TransitionPattern),
    /// The sensitization constraints are unsatisfiable or the search
    /// aborted.
    Untested,
    /// The path contains a gate whose side constraints cannot be expressed
    /// (e.g. an on-path MUX select).
    Unsupported,
}

/// Generates a non-robust two-pattern test for a path-delay fault:
/// V2 satisfies every side-input constraint and sets the source to the
/// launch's final value; V1 justifies the initial value.
pub fn generate_path_test(
    view: &TestView<'_>,
    fault: &PathDelayFault,
    config: &PodemConfig,
    seed: u64,
) -> PathTestOutcome {
    let netlist = view.netlist();
    let path = &fault.path;
    // Collect the per-gate constraint alternatives.
    let mut per_gate: Vec<Vec<Vec<(CellId, bool)>>> = Vec::new();
    for w in path.cells().windows(2) {
        let gate = w[1];
        let on_pin = netlist
            .cell(gate)
            .fanin()
            .iter()
            .position(|&f| f == w[0])
            .expect("path is connected");
        match side_constraints(netlist, gate, on_pin) {
            Some(alts) => per_gate.push(alts),
            None => return PathTestOutcome::Unsupported,
        }
    }
    // Enumerate disjunctive variants (mixed-radix counter), capped.
    const MAX_VARIANTS: usize = 16;
    let variant_count: usize = per_gate
        .iter()
        .map(|alts| alts.len())
        .product::<usize>()
        .min(MAX_VARIANTS);
    let podem = Podem::new(view, config.clone());
    let Some(v1) = podem.justify(path.source(), !fault.rising_launch) else {
        return PathTestOutcome::Untested;
    };
    for variant in 0..variant_count.max(1) {
        let mut goals: Vec<(CellId, bool)> = vec![(path.source(), fault.rising_launch)];
        let mut radix = variant;
        for alts in &per_gate {
            let pick = radix % alts.len();
            radix /= alts.len();
            goals.extend(alts[pick].iter().copied());
        }
        if let Some(v2) = podem.justify_all(&goals) {
            let mut rng = Rng::seed_from_u64(seed);
            return PathTestOutcome::Tested(TransitionPattern {
                v1: v1.fill_random(&mut rng),
                v2: v2.fill_random(&mut rng),
            });
        }
    }
    PathTestOutcome::Untested
}

/// Verifies the non-robust criterion by simulation: the source transitions
/// V1→V2 and, under V2, every side input carries its non-controlling value
/// (so the path output's timing depends on the path under test).
pub fn verify_non_robust(
    view: &TestView<'_>,
    fault: &PathDelayFault,
    pattern: &TransitionPattern,
) -> bool {
    let netlist = view.netlist();
    let words =
        |bits: &[bool]| -> Vec<u64> { bits.iter().map(|&b| if b { !0 } else { 0 }).collect() };
    let good1 = view.eval64(&words(&pattern.v1), None);
    let good2 = view.eval64(&words(&pattern.v2), None);
    let src = fault.path.source();
    let launched = good1[src.index()] & 1 != good2[src.index()] & 1
        && (good2[src.index()] & 1 == 1) == fault.rising_launch;
    if !launched {
        return false;
    }
    for w in fault.path.cells().windows(2) {
        let gate = w[1];
        let on_pin = netlist
            .cell(gate)
            .fanin()
            .iter()
            .position(|&f| f == w[0])
            .expect("connected");
        let Some(alternatives) = side_constraints(netlist, gate, on_pin) else {
            return false;
        };
        // At least one sufficient constraint set must hold under V2.
        let sensitized = alternatives.iter().any(|cs| {
            cs.iter()
                .all(|&(cell, want)| (good2[cell.index()] & 1 == 1) == want)
        });
        if !sensitized {
            return false;
        }
    }
    true
}

/// Grows the longest *sensitizable* path from `source` with the given
/// launch polarity: a depth-first search that extends the path gate by
/// gate, keeping the accumulated non-robust constraint set satisfiable at
/// every step (checked with multi-objective PODEM justification). Returns
/// the deepest completed path reaching an observation point, with a
/// verified test pattern.
///
/// This is the practical complement to [`longest_paths`]: the structurally
/// longest paths of a circuit are frequently *false* (unsensitizable), and
/// the delay that matters for test is the longest true path.
pub fn longest_sensitizable_path(
    view: &TestView<'_>,
    source: CellId,
    rising_launch: bool,
    config: &PodemConfig,
    node_budget: usize,
) -> Option<(StructuralPath, TransitionPattern)> {
    let netlist = view.netlist();
    let podem = Podem::new(view, config.clone());
    podem.justify(source, !rising_launch)?;

    #[allow(clippy::type_complexity)]
    struct Search<'p, 'v, 'a> {
        netlist: &'p Netlist,
        podem: &'p Podem<'v, 'a>,
        compiled: &'p flh_netlist::CompiledCircuit,
        budget: usize,
        best: Option<(Vec<CellId>, Vec<(CellId, bool)>)>,
    }

    impl Search<'_, '_, '_> {
        fn observed(&self, cell: CellId) -> bool {
            self.compiled.readers(cell.index() as u32).iter().any(|&r| {
                let k = self.compiled.kind(r);
                k == CellKind::Output || k.is_flip_flop()
            })
        }

        fn dfs(&mut self, path: &mut Vec<CellId>, goals: &mut Vec<(CellId, bool)>) {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let tail = *path.last().expect("nonempty path");
            // Record as a candidate if observable and deeper than the best.
            if path.len() >= 2
                && self.observed(tail)
                && self.best.as_ref().is_none_or(|(b, _)| path.len() > b.len())
            {
                self.best = Some((path.clone(), goals.clone()));
            }
            // Extend through combinational readers, deepest-first.
            let mut readers: Vec<CellId> = self
                .compiled
                .readers(tail.index() as u32)
                .iter()
                .map(|&r| CellId::from_index(r as usize))
                .filter(|&r| self.netlist.cell(r).kind().is_combinational())
                .collect();
            readers.sort();
            readers.dedup();
            for gate in readers {
                if path.contains(&gate) {
                    continue;
                }
                let on_pin = self
                    .netlist
                    .cell(gate)
                    .fanin()
                    .iter()
                    .position(|&f| f == tail)
                    .expect("reader reads tail");
                let Some(alternatives) = side_constraints(self.netlist, gate, on_pin) else {
                    continue;
                };
                for alt in alternatives {
                    let before = goals.len();
                    goals.extend(alt.iter().copied());
                    if self.podem.justify_all(goals).is_some() {
                        path.push(gate);
                        self.dfs(path, goals);
                        path.pop();
                    }
                    goals.truncate(before);
                    if self.budget == 0 {
                        return;
                    }
                }
            }
        }
    }

    let mut search = Search {
        netlist,
        podem: &podem,
        compiled: view.compiled(),
        budget: node_budget,
        best: None,
    };
    let mut path = vec![source];
    let mut goals = vec![(source, rising_launch)];
    // The source must itself be justifiable at the launch value.
    podem.justify_all(&goals)?;
    search.dfs(&mut path, &mut goals);

    let (cells, goals) = search.best?;
    let v2 = podem.justify_all(&goals)?;
    let v1 = podem.justify(source, !rising_launch)?;
    let mut rng = Rng::seed_from_u64(0x5ca1ab1e);
    let pattern = TransitionPattern {
        v1: v1.fill_random(&mut rng),
        v2: v2.fill_random(&mut rng),
    };
    let structural = StructuralPath::new(netlist, cells);
    Some((structural, pattern))
}

/// Generates a *robust* two-pattern test for a path-delay fault, under the
/// conservative steady-side criterion: every off-path constraint value is
/// held in **both** vectors, so no side-input transition can mask or
/// produce the observed edge. This is strictly stronger than the textbook
/// robust condition (which relaxes sides at gates whose on-path input ends
/// at the controlling value), so every test returned is genuinely robust;
/// some robustly-testable paths may be reported `Untested`.
pub fn generate_robust_path_test(
    view: &TestView<'_>,
    fault: &PathDelayFault,
    config: &PodemConfig,
    seed: u64,
) -> PathTestOutcome {
    let netlist = view.netlist();
    let path = &fault.path;
    let mut per_gate: Vec<Vec<Vec<(CellId, bool)>>> = Vec::new();
    for w in path.cells().windows(2) {
        let gate = w[1];
        let on_pin = netlist
            .cell(gate)
            .fanin()
            .iter()
            .position(|&f| f == w[0])
            .expect("path is connected");
        match side_constraints(netlist, gate, on_pin) {
            Some(alts) => per_gate.push(alts),
            None => return PathTestOutcome::Unsupported,
        }
    }
    const MAX_VARIANTS: usize = 16;
    let variant_count: usize = per_gate
        .iter()
        .map(|alts| alts.len())
        .product::<usize>()
        .min(MAX_VARIANTS);
    let podem = Podem::new(view, config.clone());
    for variant in 0..variant_count.max(1) {
        let mut sides: Vec<(CellId, bool)> = Vec::new();
        let mut radix = variant;
        for alts in &per_gate {
            let pick = radix % alts.len();
            radix /= alts.len();
            sides.extend(alts[pick].iter().copied());
        }
        // Both vectors must justify the same steady side values.
        let mut v2_goals = sides.clone();
        v2_goals.push((path.source(), fault.rising_launch));
        let mut v1_goals = sides.clone();
        v1_goals.push((path.source(), !fault.rising_launch));
        if let (Some(v2), Some(v1)) = (podem.justify_all(&v2_goals), podem.justify_all(&v1_goals)) {
            let mut rng = Rng::seed_from_u64(seed);
            return PathTestOutcome::Tested(TransitionPattern {
                v1: v1.fill_random(&mut rng),
                v2: v2.fill_random(&mut rng),
            });
        }
    }
    PathTestOutcome::Untested
}

/// Verifies the steady-side robust criterion by simulation: the source
/// transitions and some constraint alternative of every on-path gate holds
/// under **both** vectors with identical values.
pub fn verify_robust(
    view: &TestView<'_>,
    fault: &PathDelayFault,
    pattern: &TransitionPattern,
) -> bool {
    let netlist = view.netlist();
    let words =
        |bits: &[bool]| -> Vec<u64> { bits.iter().map(|&b| if b { !0 } else { 0 }).collect() };
    let good1 = view.eval64(&words(&pattern.v1), None);
    let good2 = view.eval64(&words(&pattern.v2), None);
    let src = fault.path.source();
    let launched = good1[src.index()] & 1 != good2[src.index()] & 1
        && (good2[src.index()] & 1 == 1) == fault.rising_launch;
    if !launched {
        return false;
    }
    for w in fault.path.cells().windows(2) {
        let gate = w[1];
        let on_pin = netlist
            .cell(gate)
            .fanin()
            .iter()
            .position(|&f| f == w[0])
            .expect("connected");
        let Some(alternatives) = side_constraints(netlist, gate, on_pin) else {
            return false;
        };
        let sensitized = alternatives.iter().any(|cs| {
            cs.iter().all(|&(cell, want)| {
                (good2[cell.index()] & 1 == 1) == want && (good1[cell.index()] & 1 == 1) == want
            })
        });
        if !sensitized {
            return false;
        }
    }
    true
}

/// Batch summary over the `k` longest paths (both launch polarities).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathDelayReport {
    /// Faults with a verified non-robust test.
    pub tested: usize,
    /// Faults where generation failed or aborted.
    pub untested: usize,
    /// Faults on structurally unsupported paths.
    pub unsupported: usize,
}

impl PathDelayReport {
    /// Fraction of targeted path-delay faults with a verified test.
    pub fn coverage_pct(&self) -> f64 {
        let total = self.tested + self.untested + self.unsupported;
        if total == 0 {
            100.0
        } else {
            100.0 * self.tested as f64 / total as f64
        }
    }
}

/// Runs non-robust generation for both polarities of the `k` longest paths.
pub fn path_delay_atpg(
    view: &TestView<'_>,
    k: usize,
    config: &PodemConfig,
    seed: u64,
) -> PathDelayReport {
    let mut report = PathDelayReport::default();
    for path in longest_paths(view.netlist(), k) {
        for rising in [false, true] {
            let fault = PathDelayFault {
                path: path.clone(),
                rising_launch: rising,
            };
            match generate_path_test(view, &fault, config, seed) {
                PathTestOutcome::Tested(pattern) => {
                    debug_assert!(verify_non_robust(view, &fault, &pattern));
                    report.tested += 1;
                }
                PathTestOutcome::Untested => report.untested += 1,
                PathTestOutcome::Unsupported => report.unsupported += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::{generate_circuit, GeneratorConfig};

    #[test]
    fn inverter_chain_path_is_always_testable() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![g1]);
        let g3 = n.add_cell("g3", CellKind::Inv, vec![g2]);
        n.add_output("y", g3);
        let view = TestView::new(&n).unwrap();
        let paths = longest_paths(&n, 4);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].length(), 3);
        assert!(paths[0].inverts(&n));
        for rising in [false, true] {
            let fault = PathDelayFault {
                path: paths[0].clone(),
                rising_launch: rising,
            };
            match generate_path_test(&view, &fault, &PodemConfig::paper_default(), 3) {
                PathTestOutcome::Tested(p) => {
                    assert!(verify_non_robust(&view, &fault, &p));
                    assert_ne!(p.v1[0], p.v2[0], "source must transition");
                }
                other => panic!("chain path untestable: {other:?}"),
            }
        }
    }

    #[test]
    fn side_inputs_get_non_controlling_values() {
        // Path through a NAND2: the other input must be 1 under V2.
        let mut n = Netlist::new("nand_path");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
        n.add_output("y", g);
        let view = TestView::new(&n).unwrap();
        let path = StructuralPath::new(&n, vec![a, g]);
        let fault = PathDelayFault {
            path,
            rising_launch: true,
        };
        match generate_path_test(&view, &fault, &PodemConfig::paper_default(), 5) {
            PathTestOutcome::Tested(p) => {
                assert!(p.v2[1], "side input b must be 1 in V2");
                assert!(!p.v1[0] && p.v2[0]);
                assert!(verify_non_robust(&view, &fault, &p));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blocked_path_is_untested() {
        // Side input tied so the path can never sensitize.
        let mut n = Netlist::new("blocked");
        let a = n.add_input("a");
        let k = n.add_cell("k", CellKind::Const0, vec![]);
        let g = n.add_cell("g", CellKind::And2, vec![a, k]);
        n.add_output("y", g);
        let view = TestView::new(&n).unwrap();
        let fault = PathDelayFault {
            path: StructuralPath::new(&n, vec![a, g]),
            rising_launch: true,
        };
        assert_eq!(
            generate_path_test(&view, &fault, &PodemConfig::paper_default(), 1),
            PathTestOutcome::Untested
        );
    }

    #[test]
    fn mux_select_on_path_is_unsupported() {
        let mut n = Netlist::new("muxsel");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        let g = n.add_cell("g", CellKind::Mux2, vec![a, b, s]);
        n.add_output("y", g);
        let view = TestView::new(&n).unwrap();
        let fault = PathDelayFault {
            path: StructuralPath::new(&n, vec![s, g]),
            rising_launch: true,
        };
        assert_eq!(
            generate_path_test(&view, &fault, &PodemConfig::paper_default(), 1),
            PathTestOutcome::Unsupported
        );
    }

    #[test]
    fn robust_tests_are_also_non_robust_and_steady() {
        let mut n = Netlist::new("rob");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
        let h = n.add_cell("h", CellKind::Inv, vec![g]);
        n.add_output("y", h);
        let view = TestView::new(&n).unwrap();
        let fault = PathDelayFault {
            path: StructuralPath::new(&n, vec![a, g, h]),
            rising_launch: true,
        };
        match generate_robust_path_test(&view, &fault, &PodemConfig::paper_default(), 2) {
            PathTestOutcome::Tested(p) => {
                assert!(verify_robust(&view, &fault, &p));
                assert!(verify_non_robust(&view, &fault, &p));
                // Side input b held at 1 in both vectors.
                assert!(p.v1[1] && p.v2[1]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn robust_is_harder_than_non_robust() {
        // A path whose side input is the complement of the launch input
        // cannot be held steady: non-robust works, robust must fail.
        let mut n = Netlist::new("hard");
        let a = n.add_input("a");
        let inv = n.add_cell("inv", CellKind::Inv, vec![a]);
        let g = n.add_cell("g", CellKind::And2, vec![a, inv]);
        let o = n.add_cell("o", CellKind::Or2, vec![g, a]);
        n.add_output("y", o);
        let view = TestView::new(&n).unwrap();
        // Path a -> g: side input is !a, which moves whenever a moves.
        let fault = PathDelayFault {
            path: StructuralPath::new(&n, vec![a, g]),
            rising_launch: true,
        };
        let robust = generate_robust_path_test(&view, &fault, &PodemConfig::paper_default(), 1);
        assert_eq!(robust, PathTestOutcome::Untested);
    }

    #[test]
    fn generated_circuit_critical_paths_report() {
        // Longest structural paths in random logic are frequently *false*
        // (unsensitizable) — the interesting property is that the engine
        // classifies them and that everything it marks Tested verifies.
        let n = generate_circuit(&GeneratorConfig {
            name: "pd".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 8,
            gates: 70,
            logic_depth: 8,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 1001,
        })
        .unwrap();
        let view = TestView::new(&n).unwrap();
        let report = path_delay_atpg(&view, 10, &PodemConfig::paper_default(), 11);
        let total = report.tested + report.untested + report.unsupported;
        assert!(total >= 10, "expected both polarities of >= 5 paths");
        assert!(report.tested >= 1, "no critical path testable: {report:?}");
    }

    /// `generate_path_test` must find a V2 exactly when the side-input
    /// constraint set plus launch value is satisfiable — cross-checked
    /// exhaustively on a small circuit.
    #[test]
    fn generation_matches_exhaustive_satisfiability() {
        let n = generate_circuit(&GeneratorConfig {
            name: "pd_small".into(),
            primary_inputs: 4,
            primary_outputs: 3,
            flip_flops: 4,
            gates: 35,
            logic_depth: 5,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 9,
        })
        .unwrap();
        let view = TestView::new(&n).unwrap();
        let na = view.assignable().len();
        assert!(na <= 14);
        for path in longest_paths(&n, 6) {
            for rising in [false, true] {
                let fault = PathDelayFault {
                    path: path.clone(),
                    rising_launch: rising,
                };
                // Build the same per-gate alternatives the generator uses.
                let mut per_gate: Vec<Vec<Vec<(flh_netlist::CellId, bool)>>> = Vec::new();
                let mut supported = true;
                for w in fault.path.cells().windows(2) {
                    let on_pin = n
                        .cell(w[1])
                        .fanin()
                        .iter()
                        .position(|&f| f == w[0])
                        .unwrap();
                    match side_constraints(&n, w[1], on_pin) {
                        Some(alts) => per_gate.push(alts),
                        None => supported = false,
                    }
                }
                let variants: usize = per_gate.iter().map(|a| a.len()).product::<usize>();
                if !supported || variants > 16 {
                    // The generator caps its disjunctive search; skip cases
                    // where it is legitimately incomplete.
                    continue;
                }
                let satisfiable = (0u64..(1 << na)).any(|bits| {
                    let words: Vec<u64> = (0..na)
                        .map(|i| if bits >> i & 1 == 1 { !0 } else { 0 })
                        .collect();
                    let vals = view.eval64(&words, None);
                    let bit = |c: flh_netlist::CellId| vals[c.index()] & 1 == 1;
                    bit(fault.path.source()) == rising
                        && per_gate
                            .iter()
                            .all(|alts| alts.iter().any(|cs| cs.iter().all(|&(c, v)| bit(c) == v)))
                });
                let outcome = generate_path_test(&view, &fault, &PodemConfig::paper_default(), 2);
                match outcome {
                    PathTestOutcome::Tested(p) => {
                        assert!(satisfiable, "generator found an impossible test");
                        assert!(verify_non_robust(&view, &fault, &p));
                    }
                    PathTestOutcome::Untested => {
                        assert!(!satisfiable, "generator missed a satisfiable path");
                    }
                    PathTestOutcome::Unsupported => unreachable!("filtered above"),
                }
            }
        }
    }

    #[test]
    fn sensitizable_path_search_finds_verified_paths() {
        let n = generate_circuit(&GeneratorConfig {
            name: "sens".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 8,
            gates: 70,
            logic_depth: 8,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 2002,
        })
        .unwrap();
        let view = TestView::new(&n).unwrap();
        let cfg = PodemConfig::paper_default();
        let mut found = 0;
        let mut longest = 0;
        for &src in n.flip_flops().iter().take(4) {
            for rising in [false, true] {
                if let Some((path, pattern)) =
                    longest_sensitizable_path(&view, src, rising, &cfg, 400)
                {
                    found += 1;
                    longest = longest.max(path.length());
                    let fault = PathDelayFault {
                        path,
                        rising_launch: rising,
                    };
                    assert!(
                        verify_non_robust(&view, &fault, &pattern),
                        "sensitizable path failed verification"
                    );
                }
            }
        }
        assert!(found >= 4, "only {found} sensitizable paths found");
        assert!(longest >= 2, "paths too shallow: {longest}");
        // Sensitizable length never exceeds structural depth.
        let lv = analysis::Levelization::compute(&n).unwrap();
        assert!(longest <= lv.depth() as usize);
    }

    #[test]
    fn sensitizable_search_on_inverter_chain_recovers_full_depth() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let ff = n.add_cell("ff", CellKind::Dff, vec![a]);
        let mut prev: CellId = ff;
        for i in 0..5 {
            prev = n.add_cell(format!("i{i}"), CellKind::Inv, vec![prev]);
        }
        n.add_output("y", prev);
        let view = TestView::new(&n).unwrap();
        let (path, pattern) =
            longest_sensitizable_path(&view, ff, true, &PodemConfig::paper_default(), 100)
                .expect("chain is trivially sensitizable");
        assert_eq!(path.length(), 5);
        let fault = PathDelayFault {
            path,
            rising_launch: true,
        };
        assert!(verify_non_robust(&view, &fault, &pattern));
    }

    #[test]
    fn longest_paths_are_sorted_and_connected() {
        let n = generate_circuit(&GeneratorConfig {
            name: "lp".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 6,
            gates: 60,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 77,
        })
        .unwrap();
        let paths = longest_paths(&n, 8);
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].length() >= w[1].length());
        }
        // The longest equals the structural depth.
        let lv = analysis::Levelization::compute(&n).unwrap();
        assert_eq!(paths[0].length(), lv.depth() as usize);
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn disconnected_path_panics() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        let h = n.add_cell("h", CellKind::Inv, vec![b]);
        n.add_output("y", g);
        n.add_output("z", h);
        StructuralPath::new(&n, vec![a, h]);
    }
}
