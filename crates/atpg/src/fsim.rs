//! Parallel-pattern stuck-at fault simulation with cone-limited faulty
//! resimulation and fault dropping.
//!
//! The simulator walks the [`CompiledCircuit`] inside its [`TestView`]: the
//! good machine is evaluated once per 64-pattern batch over the compiled
//! level order, and each fault's deviation is then replayed **in place**,
//! event-driven: readers of every changed cell are queued into per-level
//! buckets (deduplicated by a per-fault generation stamp) and drained in
//! level order, so a fault only ever touches the cells its deviation
//! actually reaches — not its full static fanout cone. Changed cells are
//! recorded in an undo log and restored afterwards, so there is no
//! per-fault clone of the value array. Detection never scans the full
//! observation list: only changed cells flagged as observation drivers
//! ([`TestView::observed_drivers`]) contribute to the miscompare word, and
//! the replay stops as soon as the fault is detected on an active lane.
//!
//! [`ConeArena`] (static fanout cones as ranges into a shared arena) backs
//! the transition-fault simulator, which needs the whole cone for its
//! two-time-frame bookkeeping.

use flh_exec::ThreadPool;
use flh_netlist::{CompiledCircuit, ConeScratch};

use crate::fault::{Fault, FaultSite};
use crate::tview::TestView;

/// Cache of fanout cones stored as index ranges into one shared backing
/// array — the per-site cones of a fault-simulation run, interned once and
/// borrowed as `&[u32]` slices thereafter (no per-site `Vec`, no hashing).
#[derive(Clone, Debug, Default)]
pub struct ConeArena {
    /// Per dense cell id: `(start, end)` into `data`, or `None` if the cone
    /// has not been built yet.
    ranges: Vec<Option<(u32, u32)>>,
    data: Vec<u32>,
    scratch: ConeScratch,
    tmp: Vec<u32>,
}

impl ConeArena {
    /// Empty arena; lazily sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Topologically-sorted fanout cone of `seed`, built on first request
    /// and appended to the shared backing array, then served as a range.
    pub fn cone<'s>(&'s mut self, compiled: &CompiledCircuit, seed: u32) -> &'s [u32] {
        if self.ranges.len() < compiled.cell_count() {
            self.ranges.resize(compiled.cell_count(), None);
        }
        let (start, end) = match self.ranges[seed as usize] {
            Some(r) => r,
            None => {
                let start = self.data.len() as u32;
                compiled.fanout_cone_into(seed, &mut self.scratch, &mut self.tmp);
                self.data.extend_from_slice(&self.tmp);
                let r = (start, self.data.len() as u32);
                self.ranges[seed as usize] = Some(r);
                r
            }
        };
        &self.data[start as usize..end as usize]
    }

    /// Total interned cone entries (diagnostic).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no cone has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// 64-way parallel single-pattern stuck-at fault simulator.
pub struct StuckSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    /// Good-machine values, reused across batches; faulty resimulation
    /// mutates it in place under `undo`.
    values: Vec<u64>,
    /// Undo log of the current fault's replay writes: `(cell, good value)`.
    undo: Vec<(u32, u64)>,
    /// Per-cell enqueue stamp: a cell joins the replay queue at most once
    /// per fault (stamp equals the fault's generation).
    marks: Vec<u64>,
    gen: u64,
    /// Replay queue, one bucket per logic level (index 0 unused — sources
    /// are never re-evaluated).
    buckets: Vec<Vec<u32>>,
}

impl<'v, 'a> StuckSimulator<'v, 'a> {
    /// Builds a simulator over a test view.
    pub fn new(view: &'v TestView<'a>) -> Self {
        let compiled = view.compiled();
        StuckSimulator {
            view,
            values: Vec::new(),
            undo: Vec::new(),
            marks: vec![0; compiled.cell_count()],
            gen: 0,
            buckets: vec![Vec::new(); compiled.levels() + 1],
        }
    }

    /// Simulates up to 64 patterns (one per bit lane of `words`) against
    /// the fault list, setting `detected` flags. Returns new detections.
    pub fn run_batch(
        &mut self,
        words: &[u64],
        active_mask: u64,
        faults: &[Fault],
        detected: &mut [bool],
    ) -> usize {
        self.view.eval64_into(words, None, &mut self.values);
        let compiled = self.view.compiled();
        let observed = self.view.observed_drivers();
        let netlist = self.view.netlist();
        let mut new_hits = 0;
        let mut inputs: Vec<u64> = Vec::with_capacity(8);

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            // Activation lanes: the good line value must oppose the stuck
            // value somewhere in the batch.
            let driver = fault.driver(netlist);
            let line = self.values[driver.index()];
            let active_lanes = if fault.stuck.as_bool() { !line } else { line };
            let lanes = active_lanes & active_mask;
            if lanes == 0 {
                continue;
            }

            // Event-driven faulty resimulation, in place. The fault site is
            // seeded first (stem: force the line; branch: re-evaluate the
            // gate with the forced pin), then the deviation is propagated
            // level by level through the readers of changed cells; every
            // write saves the good value for restore and feeds the
            // miscompare word if the cell drives an observation.
            self.undo.clear();
            self.gen += 1;
            let gen = self.gen;
            let mut miscompare = 0u64;
            let (seed, seed_changed) = match fault.site {
                FaultSite::Stem(cell) => {
                    let id = cell.index() as u32;
                    let old = self.values[id as usize];
                    let new = fault.stuck.word();
                    if old != new {
                        self.undo.push((id, old));
                        self.values[id as usize] = new;
                        if observed[id as usize] {
                            miscompare |= old ^ new;
                        }
                    }
                    (id, old != new)
                }
                FaultSite::Branch { gate, pin } => {
                    let id = gate.index() as u32;
                    inputs.clear();
                    inputs.extend(compiled.fanin(id).iter().map(|&x| self.values[x as usize]));
                    inputs[pin] = fault.stuck.word();
                    let old = self.values[id as usize];
                    let new = compiled.kind(id).eval64(&inputs);
                    if old != new {
                        self.undo.push((id, old));
                        self.values[id as usize] = new;
                        if observed[id as usize] {
                            miscompare |= old ^ new;
                        }
                    }
                    (id, old != new)
                }
            };
            if seed_changed && miscompare & lanes == 0 {
                // Queue the seed's readers, then drain the buckets in level
                // order. A reader always sits at a strictly higher level
                // than its driver, so the current bucket never grows while
                // it is being drained. Level-0 readers are flip-flops
                // (sequential boundary: D observed, Q untouched).
                let mut lo = usize::MAX;
                let mut hi = 0usize;
                for &r in compiled.readers(seed) {
                    let lvl = compiled.level_of(r) as usize;
                    if lvl == 0 || self.marks[r as usize] == gen {
                        continue;
                    }
                    self.marks[r as usize] = gen;
                    self.buckets[lvl].push(r);
                    lo = lo.min(lvl);
                    hi = hi.max(lvl);
                }
                let mut lvl = lo;
                'replay: while lvl <= hi {
                    let bucket = std::mem::take(&mut self.buckets[lvl]);
                    for &id in &bucket {
                        inputs.clear();
                        inputs.extend(compiled.fanin(id).iter().map(|&x| self.values[x as usize]));
                        let old = self.values[id as usize];
                        let new = compiled.kind(id).eval64(&inputs);
                        if old == new {
                            continue; // deviation masked at this cell
                        }
                        self.undo.push((id, old));
                        self.values[id as usize] = new;
                        if observed[id as usize] {
                            miscompare |= old ^ new;
                            if miscompare & lanes != 0 {
                                self.buckets[lvl] = bucket;
                                break 'replay; // detected: the rest is moot
                            }
                        }
                        for &r in compiled.readers(id) {
                            let rl = compiled.level_of(r) as usize;
                            if rl == 0 || self.marks[r as usize] == gen {
                                continue;
                            }
                            self.marks[r as usize] = gen;
                            self.buckets[rl].push(r);
                            hi = hi.max(rl);
                        }
                    }
                    self.buckets[lvl] = bucket;
                    self.buckets[lvl].clear();
                    lvl += 1;
                }
                // An early exit leaves queued entries behind; drop them so
                // the buckets are empty for the next fault.
                if lvl <= hi {
                    for b in &mut self.buckets[lvl..=hi] {
                        b.clear();
                    }
                }
            }
            // Restore the good machine.
            for &(id, old) in &self.undo {
                self.values[id as usize] = old;
            }
            if miscompare & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }
}

/// Per-fault outcome of a partitioned stuck-at campaign: the detection flag
/// plus the index of the 64-pattern batch that first caught the fault.
/// Batch indices are global over the pattern set, so they are identical no
/// matter how the fault list is partitioned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// The fault was detected by at least one pattern.
    pub detected: bool,
    /// Index of the first detecting 64-pattern batch (`None` if undetected).
    pub first_batch: Option<u32>,
}

/// Packs up to 64 patterns into one word per assignable input and returns
/// the lane mask covering the packed patterns.
fn pack_batch(chunk: &[Vec<bool>], n: usize, words: &mut [u64]) -> u64 {
    words.fill(0);
    for (lane, p) in chunk.iter().enumerate() {
        assert_eq!(p.len(), n, "pattern length mismatch");
        for (i, &bit) in p.iter().enumerate() {
            if bit {
                words[i] |= 1 << lane;
            }
        }
    }
    if chunk.len() == 64 {
        !0
    } else {
        (1u64 << chunk.len()) - 1
    }
}

/// One worker's share of a partitioned campaign: a fresh simulator over the
/// shared view, the full pattern set, a contiguous fault shard.
fn stats_shard(view: &TestView<'_>, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<FaultStats> {
    let mut sim = StuckSimulator::new(view);
    let mut detected = vec![false; faults.len()];
    let mut stats = vec![FaultStats::default(); faults.len()];
    let n = view.assignable().len();
    let mut words = vec![0u64; n];
    for (batch, chunk) in patterns.chunks(64).enumerate() {
        let mask = pack_batch(chunk, n, &mut words);
        let new_hits = sim.run_batch(&words, mask, faults, &mut detected);
        if new_hits > 0 {
            for (s, &d) in stats.iter_mut().zip(&detected) {
                if d && !s.detected {
                    s.detected = true;
                    s.first_batch = Some(batch as u32);
                }
            }
        }
    }
    stats
}

impl StuckSimulator<'_, '_> {
    /// Partitioned stuck-at campaign: splits `faults` into one contiguous
    /// shard per pool worker, runs each shard on its own simulator, and
    /// merges per-fault stats **by fault id** (the shards are contiguous
    /// ascending ranges, so concatenation in partition order is fault-id
    /// order — completion order never matters). Bit-identical at any pool
    /// size.
    pub fn simulate_partitioned(
        view: &TestView<'_>,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        pool: &ThreadPool,
    ) -> Vec<FaultStats> {
        let parts = pool.run_partitioned(faults.len(), |range| {
            stats_shard(view, &faults[range], patterns)
        });
        let mut stats = Vec::with_capacity(faults.len());
        for (_, shard) in parts {
            stats.extend(shard);
        }
        stats
    }
}

/// Simulates a fully-specified pattern set against a stuck-at fault list,
/// returning per-fault detection flags. Patterns are bit vectors in
/// [`TestView::assignable`] order. Serial ([`ThreadPool::serial`]) case of
/// [`stuck_coverage_partitioned`].
pub fn stuck_coverage(view: &TestView<'_>, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
    stuck_coverage_partitioned(view, faults, patterns, &ThreadPool::serial())
}

/// Pooled [`stuck_coverage`]: the fault list is split across the pool's
/// workers, each with its own simulator (the cone caches are per-fault, so
/// sharding by fault loses nothing). Detection flags are merged in fault-id
/// order and are identical at any pool size.
pub fn stuck_coverage_partitioned(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    pool: &ThreadPool,
) -> Vec<bool> {
    StuckSimulator::simulate_partitioned(view, faults, patterns, pool)
        .into_iter()
        .map(|s| s.detected)
        .collect()
}

/// [`stuck_coverage_partitioned`] on a fixed-size pool — kept as the
/// thread-count-explicit entry point.
pub fn stuck_coverage_parallel(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    threads: usize,
) -> Vec<bool> {
    stuck_coverage_partitioned(view, faults, patterns, &ThreadPool::new(threads))
}

/// Reference stuck-at detection for one fault and one 64-pattern batch:
/// full faulted re-evaluation through [`TestView::eval64`], full
/// observation scan. Quadratically slower than [`StuckSimulator`] but
/// independent of the cone/undo machinery — the equivalence oracle for it.
pub fn stuck_detects_reference(
    view: &TestView<'_>,
    fault: &Fault,
    words: &[u64],
    mask: u64,
) -> u64 {
    let good = view.eval64(words, None);
    let faulty = view.eval64(words, Some(fault));
    let driver = fault.driver(view.netlist());
    let line = good[driver.index()];
    let active = if fault.stuck.as_bool() { !line } else { line };
    let obs_good = view.observe64(&good);
    let obs_faulty = view.observe64(&faulty);
    let miscompare = obs_good
        .iter()
        .zip(&obs_faulty)
        .fold(0u64, |acc, (g, b)| acc | (g ^ b));
    miscompare & active & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use crate::podem::{Podem, PodemConfig};
    use flh_netlist::{generate_circuit, CellKind, GeneratorConfig, Netlist};
    use flh_rng::Rng;

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "fsim".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 7,
            gates: 60,
            logic_depth: 6,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 404,
        })
        .expect("generates")
    }

    #[test]
    fn exhaustive_patterns_detect_every_testable_fault() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        assert!(na <= 16);
        let patterns: Vec<Vec<bool>> = (0u64..(1 << na))
            .map(|bits| (0..na).map(|i| bits >> i & 1 == 1).collect())
            .collect();
        let detected = stuck_coverage(&view, &faults, &patterns);
        // Cross-check against PODEM verdicts.
        let podem = Podem::new(&view, PodemConfig::paper_default());
        for (f, &d) in faults.iter().zip(&detected) {
            let testable = podem.generate(f).is_some();
            assert_eq!(d, testable, "{f:?}");
        }
    }

    #[test]
    fn batch_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(6);
        let patterns: Vec<Vec<bool>> = (0..150)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let batch = stuck_coverage(&view, &faults, &patterns);
        let mut serial = vec![false; faults.len()];
        for p in &patterns {
            let d = stuck_coverage(&view, &faults, std::slice::from_ref(p));
            for (s, d) in serial.iter_mut().zip(d) {
                *s |= d;
            }
        }
        assert_eq!(batch, serial);
    }

    #[test]
    fn cone_resim_matches_full_reference_resim() {
        // The in-place cone/undo fast path against the brute-force oracle:
        // every fault, random batch, identical detection lanes.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(31);
        let words: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let mut sim = StuckSimulator::new(&view);
        for fault in &faults {
            let mut detected = vec![false];
            sim.run_batch(&words, !0, std::slice::from_ref(fault), &mut detected);
            let reference = stuck_detects_reference(&view, fault, &words, !0);
            assert_eq!(detected[0], reference != 0, "{fault:?}");
        }
    }

    #[test]
    fn undo_log_restores_the_good_machine() {
        // Two consecutive single-fault batches over the same simulator must
        // behave as if each ran on a fresh one.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(8);
        let words: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let mut shared = StuckSimulator::new(&view);
        for fault in &faults {
            let mut d_shared = vec![false];
            shared.run_batch(&words, !0, std::slice::from_ref(fault), &mut d_shared);
            let mut fresh = StuckSimulator::new(&view);
            let mut d_fresh = vec![false];
            fresh.run_batch(&words, !0, std::slice::from_ref(fault), &mut d_fresh);
            assert_eq!(d_shared, d_fresh, "{fault:?}");
        }
    }

    #[test]
    fn branch_faults_are_simulated_locally() {
        let mut n = Netlist::new("br");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Buf, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Buf, vec![a]);
        n.add_output("y1", g1);
        n.add_output("y2", g2);
        let view = TestView::new(&n).unwrap();
        let fault = Fault::branch(g1, 0, StuckValue::Zero);
        let detected = stuck_coverage(&view, &[fault], &[vec![true]]);
        assert!(detected[0]);
        // And the other branch is untouched: its fault needs its own test.
        let other = Fault::branch(g2, 0, StuckValue::One);
        let detected = stuck_coverage(&view, &[other], &[vec![true]]);
        assert!(!detected[0]);
    }

    #[test]
    fn parallel_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(10);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial = stuck_coverage(&view, &faults, &patterns);
        for threads in [1, 2, 3, 8, 1000] {
            let parallel = stuck_coverage_parallel(&view, &faults, &patterns, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_stats_merge_by_fault_id() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(12);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial =
            StuckSimulator::simulate_partitioned(&view, &faults, &patterns, &ThreadPool::serial());
        let flags = stuck_coverage(&view, &faults, &patterns);
        for (s, &d) in serial.iter().zip(&flags) {
            assert_eq!(s.detected, d);
            assert_eq!(s.first_batch.is_some(), d);
            if let Some(b) = s.first_batch {
                assert!((b as usize) < patterns.len().div_ceil(64));
            }
        }
        for workers in [2, 3, 8] {
            let pooled = StuckSimulator::simulate_partitioned(
                &view,
                &faults,
                &patterns,
                &ThreadPool::new(workers),
            );
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn cone_arena_serves_stable_ranges() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let c = view.compiled();
        let mut arena = ConeArena::new();
        let first: Vec<u32> = arena.cone(c, 0).to_vec();
        let len_after_first = arena.len();
        // Re-requesting does not grow the arena and returns the same cone.
        assert_eq!(arena.cone(c, 0), first.as_slice());
        assert_eq!(arena.len(), len_after_first);
        // A second seed appends behind the first.
        let _ = arena.cone(c, 1);
        assert!(arena.len() >= len_after_first);
        assert_eq!(arena.cone(c, 0), first.as_slice());
    }

    #[test]
    fn no_patterns_no_detection() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let detected = stuck_coverage(&view, &faults, &[]);
        assert!(detected.iter().all(|&d| !d));
    }
}
