//! Parallel-pattern stuck-at fault simulation on the shared
//! [`DeviationReplay`] engine, with fault dropping.
//!
//! The simulator walks the [`flh_netlist::CompiledCircuit`] inside its
//! [`TestView`]: the good machine is evaluated once per 64-pattern batch
//! over the compiled level order, and each fault's deviation is then
//! replayed **in place** by [`DeviationReplay`] — event-driven through the
//! readers of changed cells, undone afterwards, with detection limited to
//! changed observation drivers and an early exit as soon as an active lane
//! miscompares (see [`crate::replay`] for the engine contract). The same
//! engine drives [`crate::transition::TransitionSimulator`], so both fault
//! models share one replay code path.

use flh_exec::{DropMask, ThreadPool};

use crate::fault::{Fault, FaultSite};
use crate::replay::DeviationReplay;
use crate::tview::TestView;

/// Minimum faults per shard of a partitioned campaign: below this, the
/// per-shard cost (a fresh simulator, a good-machine evaluation per batch)
/// outweighs any parallelism. Shard boundaries never affect results — stats
/// are merged by fault id — so this is purely a throughput knob.
pub(crate) const MIN_FAULTS_PER_SHARD: usize = 64;

/// 64-way parallel single-pattern stuck-at fault simulator.
pub struct StuckSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    /// Good-machine values, reused across batches; faulty resimulation
    /// mutates it in place under the replay engine's undo log.
    values: Vec<u64>,
    replay: DeviationReplay,
}

impl<'v, 'a> StuckSimulator<'v, 'a> {
    /// Builds a simulator over a test view.
    pub fn new(view: &'v TestView<'a>) -> Self {
        StuckSimulator {
            view,
            values: Vec::new(),
            replay: DeviationReplay::new(view.compiled(), view.program_arc()),
        }
    }

    /// Simulates up to 64 patterns (one per bit lane of `words`) against
    /// the fault list, setting `detected` flags. Returns new detections.
    pub fn run_batch(
        &mut self,
        words: &[u64],
        active_mask: u64,
        faults: &[Fault],
        detected: &mut [bool],
    ) -> usize {
        self.view.eval64_into(words, None, &mut self.values);
        let compiled = self.view.compiled();
        let observed = self.view.observed_drivers();
        let netlist = self.view.netlist();
        let mut new_hits = 0;
        let mut activation_skips = 0u64;
        let mut inputs: Vec<u64> = Vec::with_capacity(8);

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            // Activation lanes: the good line value must oppose the stuck
            // value somewhere in the batch.
            let driver = fault.driver(netlist);
            let line = self.values[driver.index()];
            let active_lanes = if fault.stuck.as_bool() { !line } else { line };
            let lanes = active_lanes & active_mask;
            if lanes == 0 {
                activation_skips += 1;
                continue;
            }

            // Seed of the deviation: a stem forces the line itself; a
            // branch re-evaluates its gate with the faulted pin forced.
            let (seed, forced) = match fault.site {
                FaultSite::Stem(cell) => (cell.index() as u32, fault.stuck.word()),
                FaultSite::Branch { gate, pin } => {
                    let id = gate.index() as u32;
                    inputs.clear();
                    inputs.extend(compiled.fanin(id).iter().map(|&x| self.values[x as usize]));
                    inputs[pin] = fault.stuck.word();
                    (id, compiled.kind(id).eval64(&inputs))
                }
            };
            let miscompare =
                self.replay
                    .replay(compiled, observed, &mut self.values, seed, forced, lanes);
            if miscompare & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        if flh_obs::enabled() {
            // Per-fault quantities only (skips, detections): invariant
            // under fault-list sharding, so safe as deterministic metrics.
            // The per-shard good-machine evaluation above is width-
            // dependent and is deliberately not counted.
            flh_obs::add(flh_obs::Counter::StuckActivationSkips, activation_skips);
            flh_obs::add(flh_obs::Counter::StuckDetections, new_hits as u64);
        }
        new_hits
    }
}

/// Per-fault outcome of a partitioned stuck-at campaign: the detection flag
/// plus the index of the 64-pattern batch that first caught the fault.
/// Batch indices are global over the pattern set, so they are identical no
/// matter how the fault list is partitioned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// The fault was detected by at least one pattern.
    pub detected: bool,
    /// Index of the first detecting 64-pattern batch (`None` if undetected).
    pub first_batch: Option<u32>,
}

/// Packs up to 64 patterns into one word per assignable input and returns
/// the lane mask covering the packed patterns.
fn pack_batch(chunk: &[Vec<bool>], n: usize, words: &mut [u64]) -> u64 {
    words.fill(0);
    for (lane, p) in chunk.iter().enumerate() {
        assert_eq!(p.len(), n, "pattern length mismatch");
        for (i, &bit) in p.iter().enumerate() {
            if bit {
                words[i] |= 1 << lane;
            }
        }
    }
    if chunk.len() == 64 {
        !0
    } else {
        (1u64 << chunk.len()) - 1
    }
}

/// One worker's share of a partitioned campaign: a fresh simulator over the
/// shared view, the full pattern set, a contiguous fault shard. Faults
/// flagged in `dropped` were detected by an earlier call and are never
/// replayed again; the shard's updated flags are merged back by the caller.
fn stats_shard(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    mut dropped: Vec<bool>,
) -> (Vec<FaultStats>, Vec<bool>) {
    let mut sim = StuckSimulator::new(view);
    let mut stats = vec![FaultStats::default(); faults.len()];
    let already: Vec<bool> = dropped.clone();
    let n = view.assignable().len();
    let mut words = vec![0u64; n];
    for (batch, chunk) in patterns.chunks(64).enumerate() {
        let mask = pack_batch(chunk, n, &mut words);
        let new_hits = sim.run_batch(&words, mask, faults, &mut dropped);
        if new_hits > 0 {
            for ((s, &d), &pre) in stats.iter_mut().zip(&dropped).zip(&already) {
                if d && !pre && !s.detected {
                    s.detected = true;
                    s.first_batch = Some(batch as u32);
                }
            }
        }
    }
    (stats, dropped)
}

impl StuckSimulator<'_, '_> {
    /// Partitioned stuck-at campaign: splits `faults` into one contiguous
    /// shard per pool worker, runs each shard on its own simulator, and
    /// merges per-fault stats **by fault id** (the shards are contiguous
    /// ascending ranges, so concatenation in partition order is fault-id
    /// order — completion order never matters). Bit-identical at any pool
    /// size.
    pub fn simulate_partitioned(
        view: &TestView<'_>,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        pool: &ThreadPool,
    ) -> Vec<FaultStats> {
        let mut drops = DropMask::new(faults.len());
        Self::simulate_partitioned_dropping(view, faults, patterns, pool, &mut drops)
    }

    /// [`StuckSimulator::simulate_partitioned`] with a persistent
    /// [`DropMask`]: faults already dropped are skipped by every shard, and
    /// this call's detections are merged back into `drops`, so a sequence
    /// of calls (incremental pattern blocks) never re-replays a detected
    /// fault. Stats describe **this call only** — a fault dropped by an
    /// earlier call reports `FaultStats::default()`.
    pub fn simulate_partitioned_dropping(
        view: &TestView<'_>,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        pool: &ThreadPool,
        drops: &mut DropMask,
    ) -> Vec<FaultStats> {
        assert_eq!(drops.len(), faults.len(), "drop mask length mismatch");
        let parts = pool.run_partitioned_min(faults.len(), MIN_FAULTS_PER_SHARD, |range| {
            stats_shard(view, &faults[range.clone()], patterns, drops.shard(range))
        });
        let mut stats = Vec::with_capacity(faults.len());
        for (range, (shard, flags)) in parts {
            stats.extend(shard);
            drops.merge_shard(range, &flags);
        }
        stats
    }
}

/// Simulates a fully-specified pattern set against a stuck-at fault list,
/// returning per-fault detection flags. Patterns are bit vectors in
/// [`TestView::assignable`] order. Serial ([`ThreadPool::serial`]) case of
/// [`stuck_coverage_partitioned`].
pub fn stuck_coverage(view: &TestView<'_>, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
    stuck_coverage_partitioned(view, faults, patterns, &ThreadPool::serial())
}

/// Pooled [`stuck_coverage`]: the fault list is split across the pool's
/// workers, each with its own simulator (the replay state is per-fault, so
/// sharding by fault loses nothing). Detection flags are merged in fault-id
/// order and are identical at any pool size.
pub fn stuck_coverage_partitioned(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    pool: &ThreadPool,
) -> Vec<bool> {
    StuckSimulator::simulate_partitioned(view, faults, patterns, pool)
        .into_iter()
        .map(|s| s.detected)
        .collect()
}

/// [`stuck_coverage_partitioned`] on a fixed-size pool — kept as the
/// thread-count-explicit entry point.
pub fn stuck_coverage_parallel(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    threads: usize,
) -> Vec<bool> {
    stuck_coverage_partitioned(view, faults, patterns, &ThreadPool::new(threads))
}

/// Reference stuck-at detection for one fault and one 64-pattern batch:
/// full faulted re-evaluation through [`TestView::eval64`], full
/// observation scan. Quadratically slower than [`StuckSimulator`] but
/// independent of the replay/undo machinery — the equivalence oracle for
/// it.
pub fn stuck_detects_reference(
    view: &TestView<'_>,
    fault: &Fault,
    words: &[u64],
    mask: u64,
) -> u64 {
    let good = view.eval64(words, None);
    let faulty = view.eval64(words, Some(fault));
    let driver = fault.driver(view.netlist());
    let line = good[driver.index()];
    let active = if fault.stuck.as_bool() { !line } else { line };
    let obs_good = view.observe64(&good);
    let obs_faulty = view.observe64(&faulty);
    let miscompare = obs_good
        .iter()
        .zip(&obs_faulty)
        .fold(0u64, |acc, (g, b)| acc | (g ^ b));
    miscompare & active & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use crate::podem::{Podem, PodemConfig};
    use flh_netlist::{generate_circuit, CellKind, GeneratorConfig, Netlist};
    use flh_rng::Rng;

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "fsim".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 7,
            gates: 60,
            logic_depth: 6,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 404,
        })
        .expect("generates")
    }

    #[test]
    fn exhaustive_patterns_detect_every_testable_fault() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        assert!(na <= 16);
        let patterns: Vec<Vec<bool>> = (0u64..(1 << na))
            .map(|bits| (0..na).map(|i| bits >> i & 1 == 1).collect())
            .collect();
        let detected = stuck_coverage(&view, &faults, &patterns);
        // Cross-check against PODEM verdicts.
        let podem = Podem::new(&view, PodemConfig::paper_default());
        for (f, &d) in faults.iter().zip(&detected) {
            let testable = podem.generate(f).is_some();
            assert_eq!(d, testable, "{f:?}");
        }
    }

    #[test]
    fn batch_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(6);
        let patterns: Vec<Vec<bool>> = (0..150)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let batch = stuck_coverage(&view, &faults, &patterns);
        let mut serial = vec![false; faults.len()];
        for p in &patterns {
            let d = stuck_coverage(&view, &faults, std::slice::from_ref(p));
            for (s, d) in serial.iter_mut().zip(d) {
                *s |= d;
            }
        }
        assert_eq!(batch, serial);
    }

    #[test]
    fn replay_resim_matches_full_reference_resim() {
        // The in-place replay fast path against the brute-force oracle:
        // every fault, random batch, identical detection lanes.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(31);
        let words: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let mut sim = StuckSimulator::new(&view);
        for fault in &faults {
            let mut detected = vec![false];
            sim.run_batch(&words, !0, std::slice::from_ref(fault), &mut detected);
            let reference = stuck_detects_reference(&view, fault, &words, !0);
            assert_eq!(detected[0], reference != 0, "{fault:?}");
        }
    }

    #[test]
    fn undo_log_restores_the_good_machine() {
        // Two consecutive single-fault batches over the same simulator must
        // behave as if each ran on a fresh one.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(8);
        let words: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let mut shared = StuckSimulator::new(&view);
        for fault in &faults {
            let mut d_shared = vec![false];
            shared.run_batch(&words, !0, std::slice::from_ref(fault), &mut d_shared);
            let mut fresh = StuckSimulator::new(&view);
            let mut d_fresh = vec![false];
            fresh.run_batch(&words, !0, std::slice::from_ref(fault), &mut d_fresh);
            assert_eq!(d_shared, d_fresh, "{fault:?}");
        }
    }

    #[test]
    fn branch_faults_are_simulated_locally() {
        let mut n = Netlist::new("br");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Buf, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Buf, vec![a]);
        n.add_output("y1", g1);
        n.add_output("y2", g2);
        let view = TestView::new(&n).unwrap();
        let fault = Fault::branch(g1, 0, StuckValue::Zero);
        let detected = stuck_coverage(&view, &[fault], &[vec![true]]);
        assert!(detected[0]);
        // And the other branch is untouched: its fault needs its own test.
        let other = Fault::branch(g2, 0, StuckValue::One);
        let detected = stuck_coverage(&view, &[other], &[vec![true]]);
        assert!(!detected[0]);
    }

    #[test]
    fn parallel_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(10);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial = stuck_coverage(&view, &faults, &patterns);
        for threads in [1, 2, 3, 8, 1000] {
            let parallel = stuck_coverage_parallel(&view, &faults, &patterns, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_stats_merge_by_fault_id() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(12);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial =
            StuckSimulator::simulate_partitioned(&view, &faults, &patterns, &ThreadPool::serial());
        let flags = stuck_coverage(&view, &faults, &patterns);
        for (s, &d) in serial.iter().zip(&flags) {
            assert_eq!(s.detected, d);
            assert_eq!(s.first_batch.is_some(), d);
            if let Some(b) = s.first_batch {
                assert!((b as usize) < patterns.len().div_ceil(64));
            }
        }
        for workers in [2, 3, 8] {
            let pooled = StuckSimulator::simulate_partitioned(
                &view,
                &faults,
                &patterns,
                &ThreadPool::new(workers),
            );
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn dropped_faults_are_skipped_and_merged_across_calls() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(14);
        let patterns: Vec<Vec<bool>> = (0..192)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        // One shot over the whole set...
        let whole = stuck_coverage(&view, &faults, &patterns);
        // ...equals two incremental halves through a shared drop mask.
        let mut drops = DropMask::new(faults.len());
        for half in patterns.chunks(96) {
            StuckSimulator::simulate_partitioned_dropping(
                &view,
                &faults,
                half,
                &ThreadPool::new(3),
                &mut drops,
            );
        }
        assert_eq!(drops.flags(), whole.as_slice());
        // A third call over already-covered patterns reports nothing new.
        let again = StuckSimulator::simulate_partitioned_dropping(
            &view,
            &faults,
            &patterns,
            &ThreadPool::serial(),
            &mut drops,
        );
        for (s, &d) in again.iter().zip(&whole) {
            assert!(!s.detected || !d, "dropped fault was re-detected");
        }
        assert_eq!(drops.flags(), whole.as_slice());
    }

    #[test]
    fn no_patterns_no_detection() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let detected = stuck_coverage(&view, &faults, &[]);
        assert!(detected.iter().all(|&d| !d));
    }
}
