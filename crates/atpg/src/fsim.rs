//! Parallel-pattern stuck-at fault simulation on the shared
//! [`DeviationReplay`] engine, with fault dropping.
//!
//! The simulator walks the [`flh_netlist::CompiledCircuit`] inside its
//! [`TestView`]: the good machine is evaluated once per 256-pattern block
//! (one [`Packed256`] superword per assignable line) over the compiled
//! level order, and each fault's deviation is then replayed **in place**
//! by [`DeviationReplay`] — event-driven through the readers of changed
//! cells, undone afterwards, with detection limited to changed observation
//! drivers and an early exit as soon as an active lane miscompares (see
//! [`crate::replay`] for the engine contract). Replaying 256 lanes per
//! pass costs far less than four 64-lane replays because the per-event
//! overhead (instruction decode, reader walks, bucket bookkeeping) is paid
//! once for all four batches' deviations combined. The same engine drives
//! [`crate::transition::TransitionSimulator`], so both fault models share
//! one replay code path.
//!
//! A final partial block is handled by **masking**: `pack_batch` returns
//! an activation mask with only the populated lanes set, and every
//! miscompare is intersected with it, so padding lanes never touch
//! detection flags or coverage counts.

use flh_exec::{DropMask, ThreadPool};
use flh_netlist::{CellKind, CompiledCircuit, LaneWord, Packed256, PatternWord};

use crate::fault::{Fault, FaultSite};
use crate::replay::DeviationReplay;
use crate::tview::TestView;

/// Minimum faults per shard of a partitioned campaign: below this, the
/// per-shard cost (a fresh simulator, a good-machine evaluation per batch)
/// outweighs any parallelism. Shard boundaries never affect results — stats
/// are merged by fault id — so this is purely a throughput knob.
pub(crate) const MIN_FAULTS_PER_SHARD: usize = 64;

/// Pattern lanes per simulation block — the width of one [`Packed256`]
/// superword.
pub const PATTERN_BLOCK: usize = Packed256::LANES;

/// Evaluates one library cell over a [`Packed256`] input row, limb by limb
/// through [`CellKind::eval64`] — the branch-fault forced-value
/// computation, where one gate is re-evaluated with a pin pinned.
pub(crate) fn eval_kind_packed(
    kind: CellKind,
    inputs: &[Packed256],
    limb_buf: &mut Vec<u64>,
) -> Packed256 {
    let mut limbs = [0u64; 4];
    for (l, out) in limbs.iter_mut().enumerate() {
        limb_buf.clear();
        limb_buf.extend(inputs.iter().map(|w| w.limb(l)));
        *out = kind.eval64(limb_buf);
    }
    Packed256::from_limbs(limbs)
}

/// Reorders a fault list **level-major by seed cell** (the logic level of
/// the cell each fault's deviation is seeded at, ties broken by dense cell
/// id, then original position): consecutive replays then walk adjacent
/// CSR/bytecode regions instead of hopping across the circuit. Purely a
/// locality pass — detection results are per-fault and independent of
/// processing order, so callers that aggregate (campaign counts, the
/// perf benches) can apply it freely; callers that return per-fault
/// vectors must scatter results back through the permutation themselves.
pub fn order_stuck_faults(compiled: &CompiledCircuit, faults: &[Fault]) -> Vec<Fault> {
    let mut ordered: Vec<Fault> = faults.to_vec();
    ordered.sort_by_key(|f| {
        let seed = match f.site {
            FaultSite::Stem(cell) => cell.index() as u32,
            FaultSite::Branch { gate, .. } => gate.index() as u32,
        };
        (compiled.level_of(seed), seed)
    });
    ordered
}

/// 256-lane parallel-pattern stuck-at fault simulator.
pub struct StuckSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    /// Good-machine values, reused across batches; faulty resimulation
    /// mutates it in place under the replay engine's undo log.
    values: Vec<Packed256>,
    replay: DeviationReplay<Packed256>,
}

impl<'v, 'a> StuckSimulator<'v, 'a> {
    /// Builds a simulator over a test view.
    pub fn new(view: &'v TestView<'a>) -> Self {
        StuckSimulator {
            view,
            values: Vec::new(),
            replay: DeviationReplay::new(view.compiled(), view.program_arc()),
        }
    }

    /// Simulates up to 256 patterns (one per lane of `words`) against the
    /// fault list, setting `detected` flags. Lanes outside `active_mask`
    /// are padding and never influence detection. Returns new detections.
    pub fn run_batch(
        &mut self,
        words: &[Packed256],
        active_mask: Packed256,
        faults: &[Fault],
        detected: &mut [bool],
    ) -> usize {
        self.view.eval_lanes_into(words, &mut self.values);
        let compiled = self.view.compiled();
        let observed = self.view.observed_drivers();
        let netlist = self.view.netlist();
        let mut new_hits = 0;
        let mut activation_skips = 0u64;
        let mut inputs: Vec<Packed256> = Vec::with_capacity(8);
        let mut limb_buf: Vec<u64> = Vec::with_capacity(8);

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            // Activation lanes: the good line value must oppose the stuck
            // value somewhere in the batch.
            let driver = fault.driver(netlist);
            let line = self.values[driver.index()];
            let active_lanes = if fault.stuck.as_bool() {
                line.not()
            } else {
                line
            };
            let lanes = active_lanes.and(active_mask);
            if !lanes.any() {
                activation_skips += 1;
                continue;
            }

            // Seed of the deviation: a stem forces the line itself; a
            // branch re-evaluates its gate with the faulted pin forced.
            let (seed, forced) = match fault.site {
                FaultSite::Stem(cell) => {
                    let forced = if fault.stuck.as_bool() {
                        Packed256::top()
                    } else {
                        Packed256::bot()
                    };
                    (cell.index() as u32, forced)
                }
                FaultSite::Branch { gate, pin } => {
                    let id = gate.index() as u32;
                    inputs.clear();
                    inputs.extend(compiled.fanin(id).iter().map(|&x| self.values[x as usize]));
                    inputs[pin] = if fault.stuck.as_bool() {
                        Packed256::top()
                    } else {
                        Packed256::bot()
                    };
                    (
                        id,
                        eval_kind_packed(compiled.kind(id), &inputs, &mut limb_buf),
                    )
                }
            };
            let miscompare =
                self.replay
                    .replay(compiled, observed, &mut self.values, seed, forced, lanes);
            if miscompare.and(lanes).any() {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        if flh_obs::enabled() {
            // Per-fault quantities only (skips, detections): invariant
            // under fault-list sharding, so safe as deterministic metrics.
            // The per-shard good-machine evaluation above is width-
            // dependent and is deliberately not counted.
            flh_obs::add(flh_obs::Counter::StuckActivationSkips, activation_skips);
            flh_obs::add(flh_obs::Counter::StuckDetections, new_hits as u64);
        }
        new_hits
    }
}

/// Per-fault outcome of a partitioned stuck-at campaign: the detection flag
/// plus the index of the 256-pattern block that first caught the fault.
/// Block indices are global over the pattern set, so they are identical no
/// matter how the fault list is partitioned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// The fault was detected by at least one pattern.
    pub detected: bool,
    /// Index of the first detecting 256-pattern block (`None` if
    /// undetected).
    pub first_batch: Option<u32>,
}

/// Packs up to [`PATTERN_BLOCK`] patterns into one superword per
/// assignable input and returns the lane mask covering exactly the packed
/// patterns (padding lanes stay masked out of every miscompare).
fn pack_batch(chunk: &[Vec<bool>], n: usize, words: &mut [Packed256]) -> Packed256 {
    words.fill(Packed256::bot());
    for (lane, p) in chunk.iter().enumerate() {
        assert_eq!(p.len(), n, "pattern length mismatch");
        for (i, &bit) in p.iter().enumerate() {
            if bit {
                words[i].0[lane / 64] |= 1 << (lane % 64);
            }
        }
    }
    Packed256::mask_lanes(chunk.len())
}

/// One worker's share of a partitioned campaign: a fresh simulator over the
/// shared view, the full pattern set, a contiguous fault shard. Faults
/// flagged in `dropped` were detected by an earlier call and are never
/// replayed again; the shard's updated flags are merged back by the caller.
fn stats_shard(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    mut dropped: Vec<bool>,
) -> (Vec<FaultStats>, Vec<bool>) {
    let mut sim = StuckSimulator::new(view);
    let mut stats = vec![FaultStats::default(); faults.len()];
    let already: Vec<bool> = dropped.clone();
    let n = view.assignable().len();
    let mut words = vec![Packed256::bot(); n];
    for (batch, chunk) in patterns.chunks(PATTERN_BLOCK).enumerate() {
        let mask = pack_batch(chunk, n, &mut words);
        let new_hits = sim.run_batch(&words, mask, faults, &mut dropped);
        if new_hits > 0 {
            for ((s, &d), &pre) in stats.iter_mut().zip(&dropped).zip(&already) {
                if d && !pre && !s.detected {
                    s.detected = true;
                    s.first_batch = Some(batch as u32);
                }
            }
        }
    }
    (stats, dropped)
}

impl StuckSimulator<'_, '_> {
    /// Partitioned stuck-at campaign: splits `faults` into one contiguous
    /// shard per pool worker, runs each shard on its own simulator, and
    /// merges per-fault stats **by fault id** (the shards are contiguous
    /// ascending ranges, so concatenation in partition order is fault-id
    /// order — completion order never matters). Bit-identical at any pool
    /// size.
    pub fn simulate_partitioned(
        view: &TestView<'_>,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        pool: &ThreadPool,
    ) -> Vec<FaultStats> {
        let mut drops = DropMask::new(faults.len());
        Self::simulate_partitioned_dropping(view, faults, patterns, pool, &mut drops)
    }

    /// [`StuckSimulator::simulate_partitioned`] with a persistent
    /// [`DropMask`]: faults already dropped are skipped by every shard, and
    /// this call's detections are merged back into `drops`, so a sequence
    /// of calls (incremental pattern blocks) never re-replays a detected
    /// fault. Stats describe **this call only** — a fault dropped by an
    /// earlier call reports `FaultStats::default()`.
    pub fn simulate_partitioned_dropping(
        view: &TestView<'_>,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        pool: &ThreadPool,
        drops: &mut DropMask,
    ) -> Vec<FaultStats> {
        assert_eq!(drops.len(), faults.len(), "drop mask length mismatch");
        let parts = pool.run_partitioned_min(faults.len(), MIN_FAULTS_PER_SHARD, |range| {
            stats_shard(view, &faults[range.clone()], patterns, drops.shard(range))
        });
        let mut stats = Vec::with_capacity(faults.len());
        for (range, (shard, flags)) in parts {
            stats.extend(shard);
            drops.merge_shard(range, &flags);
        }
        stats
    }
}

/// Simulates a fully-specified pattern set against a stuck-at fault list,
/// returning per-fault detection flags. Patterns are bit vectors in
/// [`TestView::assignable`] order. Serial ([`ThreadPool::serial`]) case of
/// [`stuck_coverage_partitioned`].
pub fn stuck_coverage(view: &TestView<'_>, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
    stuck_coverage_partitioned(view, faults, patterns, &ThreadPool::serial())
}

/// Pooled [`stuck_coverage`]: the fault list is split across the pool's
/// workers, each with its own simulator (the replay state is per-fault, so
/// sharding by fault loses nothing). Detection flags are merged in fault-id
/// order and are identical at any pool size.
pub fn stuck_coverage_partitioned(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    pool: &ThreadPool,
) -> Vec<bool> {
    StuckSimulator::simulate_partitioned(view, faults, patterns, pool)
        .into_iter()
        .map(|s| s.detected)
        .collect()
}

/// [`stuck_coverage_partitioned`] on a fixed-size pool — kept as the
/// thread-count-explicit entry point.
pub fn stuck_coverage_parallel(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    threads: usize,
) -> Vec<bool> {
    stuck_coverage_partitioned(view, faults, patterns, &ThreadPool::new(threads))
}

/// Reference stuck-at detection for one fault and one 64-pattern word:
/// full faulted re-evaluation through [`TestView::eval64`], full
/// observation scan. Quadratically slower than [`StuckSimulator`] but
/// independent of the replay/undo machinery — the equivalence oracle for
/// it (superword runs check each [`Packed256`] limb against it).
pub fn stuck_detects_reference(
    view: &TestView<'_>,
    fault: &Fault,
    words: &[u64],
    mask: u64,
) -> u64 {
    let good = view.eval64(words, None);
    let faulty = view.eval64(words, Some(fault));
    let driver = fault.driver(view.netlist());
    let line = good[driver.index()];
    let active = if fault.stuck.as_bool() { !line } else { line };
    let obs_good = view.observe64(&good);
    let obs_faulty = view.observe64(&faulty);
    let miscompare = obs_good
        .iter()
        .zip(&obs_faulty)
        .fold(0u64, |acc, (g, b)| acc | (g ^ b));
    miscompare & active & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use crate::podem::{Podem, PodemConfig};
    use flh_netlist::{generate_circuit, CellKind, GeneratorConfig, Netlist};
    use flh_rng::Rng;

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "fsim".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 7,
            gates: 60,
            logic_depth: 6,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 404,
        })
        .expect("generates")
    }

    /// Embeds 64-lane words in the low limb of a superword batch.
    fn widen(words: &[u64]) -> Vec<Packed256> {
        words.iter().map(|&w| Packed256::from_word(w)).collect()
    }

    #[test]
    fn exhaustive_patterns_detect_every_testable_fault() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        assert!(na <= 16);
        let patterns: Vec<Vec<bool>> = (0u64..(1 << na))
            .map(|bits| (0..na).map(|i| bits >> i & 1 == 1).collect())
            .collect();
        let detected = stuck_coverage(&view, &faults, &patterns);
        // Cross-check against PODEM verdicts.
        let podem = Podem::new(&view, PodemConfig::paper_default());
        for (f, &d) in faults.iter().zip(&detected) {
            let testable = podem.generate(f).is_some();
            assert_eq!(d, testable, "{f:?}");
        }
    }

    #[test]
    fn batch_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(6);
        let patterns: Vec<Vec<bool>> = (0..150)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let batch = stuck_coverage(&view, &faults, &patterns);
        let mut serial = vec![false; faults.len()];
        for p in &patterns {
            let d = stuck_coverage(&view, &faults, std::slice::from_ref(p));
            for (s, d) in serial.iter_mut().zip(d) {
                *s |= d;
            }
        }
        assert_eq!(batch, serial);
    }

    #[test]
    fn replay_resim_matches_full_reference_resim() {
        // The in-place replay fast path against the brute-force oracle:
        // every fault, random batch, identical detection lanes.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(31);
        let words: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let wide = widen(&words);
        let mask = Packed256::mask_lanes(64);
        let mut sim = StuckSimulator::new(&view);
        for fault in &faults {
            let mut detected = vec![false];
            sim.run_batch(&wide, mask, std::slice::from_ref(fault), &mut detected);
            let reference = stuck_detects_reference(&view, fault, &words, !0);
            assert_eq!(detected[0], reference != 0, "{fault:?}");
        }
    }

    #[test]
    fn undo_log_restores_the_good_machine() {
        // Two consecutive single-fault batches over the same simulator must
        // behave as if each ran on a fresh one.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(8);
        let words: Vec<Packed256> = (0..na)
            .map(|_| Packed256::from_limbs([rng.gen(), rng.gen(), rng.gen(), rng.gen()]))
            .collect();
        let mut shared = StuckSimulator::new(&view);
        for fault in &faults {
            let mut d_shared = vec![false];
            shared.run_batch(
                &words,
                Packed256::top(),
                std::slice::from_ref(fault),
                &mut d_shared,
            );
            let mut fresh = StuckSimulator::new(&view);
            let mut d_fresh = vec![false];
            fresh.run_batch(
                &words,
                Packed256::top(),
                std::slice::from_ref(fault),
                &mut d_fresh,
            );
            assert_eq!(d_shared, d_fresh, "{fault:?}");
        }
    }

    #[test]
    fn branch_faults_are_simulated_locally() {
        let mut n = Netlist::new("br");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Buf, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Buf, vec![a]);
        n.add_output("y1", g1);
        n.add_output("y2", g2);
        let view = TestView::new(&n).unwrap();
        let fault = Fault::branch(g1, 0, StuckValue::Zero);
        let detected = stuck_coverage(&view, &[fault], &[vec![true]]);
        assert!(detected[0]);
        // And the other branch is untouched: its fault needs its own test.
        let other = Fault::branch(g2, 0, StuckValue::One);
        let detected = stuck_coverage(&view, &[other], &[vec![true]]);
        assert!(!detected[0]);
    }

    #[test]
    fn parallel_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(10);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial = stuck_coverage(&view, &faults, &patterns);
        for threads in [1, 2, 3, 8, 1000] {
            let parallel = stuck_coverage_parallel(&view, &faults, &patterns, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_stats_merge_by_fault_id() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(12);
        let patterns: Vec<Vec<bool>> = (0..600)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial =
            StuckSimulator::simulate_partitioned(&view, &faults, &patterns, &ThreadPool::serial());
        let flags = stuck_coverage(&view, &faults, &patterns);
        for (s, &d) in serial.iter().zip(&flags) {
            assert_eq!(s.detected, d);
            assert_eq!(s.first_batch.is_some(), d);
            if let Some(b) = s.first_batch {
                assert!((b as usize) < patterns.len().div_ceil(PATTERN_BLOCK));
            }
        }
        for workers in [2, 3, 8] {
            let pooled = StuckSimulator::simulate_partitioned(
                &view,
                &faults,
                &patterns,
                &ThreadPool::new(workers),
            );
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn dropped_faults_are_skipped_and_merged_across_calls() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(14);
        let patterns: Vec<Vec<bool>> = (0..768)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        // One shot over the whole set...
        let whole = stuck_coverage(&view, &faults, &patterns);
        // ...equals two incremental halves through a shared drop mask
        // (split off a block boundary, so partial-block masking is in
        // play on both halves).
        let mut drops = DropMask::new(faults.len());
        for half in patterns.chunks(384) {
            StuckSimulator::simulate_partitioned_dropping(
                &view,
                &faults,
                half,
                &ThreadPool::new(3),
                &mut drops,
            );
        }
        assert_eq!(drops.flags(), whole.as_slice());
        // A third call over already-covered patterns reports nothing new.
        let again = StuckSimulator::simulate_partitioned_dropping(
            &view,
            &faults,
            &patterns,
            &ThreadPool::serial(),
            &mut drops,
        );
        for (s, &d) in again.iter().zip(&whole) {
            assert!(!s.detected || !d, "dropped fault was re-detected");
        }
        assert_eq!(drops.flags(), whole.as_slice());
    }

    #[test]
    fn partial_final_block_is_masked_not_padded() {
        // Satellite check: for a pattern count that is not a multiple of
        // the block width, the padding lanes of the final block must not
        // contribute detections — N patterns give exactly the union of a
        // floor(N/block) prefix and the masked tail, and dropping the tail
        // gives exactly the prefix.
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(77);
        let patterns: Vec<Vec<bool>> = (0..PATTERN_BLOCK + 57)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let full = stuck_coverage(&view, &faults, &patterns);
        let prefix = stuck_coverage(&view, &faults, &patterns[..PATTERN_BLOCK]);
        let tail = stuck_coverage(&view, &faults, &patterns[PATTERN_BLOCK..]);
        let union: Vec<bool> = prefix.iter().zip(&tail).map(|(&a, &b)| a || b).collect();
        assert_eq!(full, union, "padding lanes leaked into detection");
        // Detection counts for N and N-rounded-down runs differ only by
        // what the genuine tail patterns detect.
        let n_full = full.iter().filter(|&&d| d).count();
        let n_prefix = prefix.iter().filter(|&&d| d).count();
        assert!(n_full >= n_prefix);
    }

    #[test]
    fn fault_ordering_is_level_major_and_result_invariant() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let ordered = order_stuck_faults(view.compiled(), &faults);
        assert_eq!(ordered.len(), faults.len());
        // Seed levels are non-decreasing.
        let level_of = |f: &Fault| {
            let seed = match f.site {
                FaultSite::Stem(cell) => cell.index() as u32,
                FaultSite::Branch { gate, .. } => gate.index() as u32,
            };
            view.compiled().level_of(seed)
        };
        assert!(ordered
            .windows(2)
            .all(|w| level_of(&w[0]) <= level_of(&w[1])));
        // Same multiset of faults, and — since detection is per-fault —
        // the same total coverage count on any pattern set.
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(21);
        let patterns: Vec<Vec<bool>> = (0..100)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let base = stuck_coverage(&view, &faults, &patterns);
        let perm = stuck_coverage(&view, &ordered, &patterns);
        assert_eq!(
            base.iter().filter(|&&d| d).count(),
            perm.iter().filter(|&&d| d).count()
        );
    }

    #[test]
    fn no_patterns_no_detection() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let detected = stuck_coverage(&view, &faults, &[]);
        assert!(detected.iter().all(|&d| !d));
    }
}
