//! Parallel-pattern stuck-at fault simulation with cone-limited faulty
//! resimulation and fault dropping.

use std::collections::HashMap;

use flh_netlist::{analysis, CellId};

use crate::fault::{Fault, FaultSite};
use crate::tview::TestView;

/// 64-way parallel single-pattern stuck-at fault simulator.
pub struct StuckSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    topo_pos: Vec<usize>,
    cones: HashMap<CellId, Vec<CellId>>,
}

impl<'v, 'a> StuckSimulator<'v, 'a> {
    /// Builds a simulator over a test view.
    pub fn new(view: &'v TestView<'a>) -> Self {
        let netlist = view.netlist();
        let order = analysis::combinational_order(netlist).expect("view is acyclic");
        let mut topo_pos = vec![usize::MAX; netlist.cell_count()];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos;
        }
        StuckSimulator {
            view,
            topo_pos,
            cones: HashMap::new(),
        }
    }

    /// Topologically-sorted fanout cone of `site`, cached. Returns a
    /// borrowed slice — the cache is only ever appended to, never evicted,
    /// so no caller needs ownership.
    fn cone(&mut self, site: CellId) -> &[CellId] {
        let view = self.view;
        let topo_pos = &self.topo_pos;
        self.cones.entry(site).or_insert_with(|| {
            let mut cone = analysis::fanout_cone(view.netlist(), view.fanouts(), &[site]);
            cone.sort_by_key(|c| topo_pos[c.index()]);
            cone
        })
    }

    /// Simulates up to 64 patterns (one per bit lane of `words`) against
    /// the fault list, setting `detected` flags. Returns new detections.
    pub fn run_batch(
        &mut self,
        words: &[u64],
        active_mask: u64,
        faults: &[Fault],
        detected: &mut [bool],
    ) -> usize {
        let good = self.view.eval64(words, None);
        let obs_good = self.view.observe64(&good);
        let netlist = self.view.netlist();
        let mut new_hits = 0;

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            // Activation lanes: the good line value must oppose the stuck
            // value somewhere in the batch.
            let driver = fault.driver(netlist);
            let line = good[driver.index()];
            let active_lanes = if fault.stuck.as_bool() { !line } else { line };
            let lanes = active_lanes & active_mask;
            if lanes == 0 {
                continue;
            }

            // Cone-limited faulty resimulation. The fault site is seeded
            // first (stem: force the line; branch: re-evaluate the gate with
            // the forced pin), then its strictly-downstream cone is replayed.
            let mut faulty = good.clone();
            let mut inputs: Vec<u64> = Vec::with_capacity(4);
            let seed = match fault.site {
                FaultSite::Stem(cell) => {
                    faulty[cell.index()] = fault.stuck.word();
                    cell
                }
                FaultSite::Branch { gate, pin } => {
                    let cell = netlist.cell(gate);
                    inputs.clear();
                    inputs.extend(cell.fanin().iter().map(|&x| faulty[x.index()]));
                    inputs[pin] = fault.stuck.word();
                    faulty[gate.index()] = cell.kind().eval64(&inputs);
                    gate
                }
            };
            for &id in self.cone(seed) {
                if id == seed {
                    continue; // seed value already forced above
                }
                let cell = netlist.cell(id);
                if cell.kind().is_flip_flop() {
                    continue;
                }
                inputs.clear();
                inputs.extend(cell.fanin().iter().map(|&x| faulty[x.index()]));
                faulty[id.index()] = cell.kind().eval64(&inputs);
            }
            let obs_faulty = self.view.observe64(&faulty);
            let miscompare = obs_good
                .iter()
                .zip(&obs_faulty)
                .fold(0u64, |acc, (g, b)| acc | (g ^ b));
            if miscompare & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }
}

/// Simulates a fully-specified pattern set against a stuck-at fault list,
/// returning per-fault detection flags. Patterns are bit vectors in
/// [`TestView::assignable`] order.
pub fn stuck_coverage(view: &TestView<'_>, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
    let mut sim = StuckSimulator::new(view);
    let mut detected = vec![false; faults.len()];
    let n = view.assignable().len();
    for chunk in patterns.chunks(64) {
        let mut words = vec![0u64; n];
        for (lane, p) in chunk.iter().enumerate() {
            assert_eq!(p.len(), n, "pattern length mismatch");
            for (i, &bit) in p.iter().enumerate() {
                if bit {
                    words[i] |= 1 << lane;
                }
            }
        }
        let mask = if chunk.len() == 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        sim.run_batch(&words, mask, faults, &mut detected);
    }
    detected
}

/// Multi-threaded [`stuck_coverage`]: the fault list is split across
/// `threads` workers, each with its own simulator (the cone caches are
/// per-fault, so sharding by fault loses nothing). Results are identical
/// to the serial version.
pub fn stuck_coverage_parallel(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    threads: usize,
) -> Vec<bool> {
    let threads = threads.max(1).min(faults.len().max(1));
    if threads == 1 {
        return stuck_coverage(view, faults, patterns);
    }
    let chunk = faults.len().div_ceil(threads);
    let mut detected = vec![false; faults.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in faults.chunks(chunk) {
            handles.push(scope.spawn(move || stuck_coverage(view, shard, patterns)));
        }
        let mut offset = 0;
        for handle in handles {
            let part = handle.join().expect("worker panicked");
            detected[offset..offset + part.len()].copy_from_slice(&part);
            offset += part.len();
        }
    });
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use crate::podem::{Podem, PodemConfig};
    use flh_netlist::{generate_circuit, CellKind, GeneratorConfig, Netlist};
    use flh_rng::Rng;

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "fsim".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 7,
            gates: 60,
            logic_depth: 6,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 404,
        })
        .expect("generates")
    }

    #[test]
    fn exhaustive_patterns_detect_every_testable_fault() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        assert!(na <= 16);
        let patterns: Vec<Vec<bool>> = (0u64..(1 << na))
            .map(|bits| (0..na).map(|i| bits >> i & 1 == 1).collect())
            .collect();
        let detected = stuck_coverage(&view, &faults, &patterns);
        // Cross-check against PODEM verdicts.
        let podem = Podem::new(&view, PodemConfig::paper_default());
        for (f, &d) in faults.iter().zip(&detected) {
            let testable = podem.generate(f).is_some();
            assert_eq!(d, testable, "{f:?}");
        }
    }

    #[test]
    fn batch_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(6);
        let patterns: Vec<Vec<bool>> = (0..150)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let batch = stuck_coverage(&view, &faults, &patterns);
        let mut serial = vec![false; faults.len()];
        for p in &patterns {
            let d = stuck_coverage(&view, &faults, std::slice::from_ref(p));
            for (s, d) in serial.iter_mut().zip(d) {
                *s |= d;
            }
        }
        assert_eq!(batch, serial);
    }

    #[test]
    fn branch_faults_are_simulated_locally() {
        let mut n = Netlist::new("br");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Buf, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Buf, vec![a]);
        n.add_output("y1", g1);
        n.add_output("y2", g2);
        let view = TestView::new(&n).unwrap();
        let fault = Fault::branch(g1, 0, StuckValue::Zero);
        let detected = stuck_coverage(&view, &[fault], &[vec![true]]);
        assert!(detected[0]);
        // And the other branch is untouched: its fault needs its own test.
        let other = Fault::branch(g2, 0, StuckValue::One);
        let detected = stuck_coverage(&view, &[other], &[vec![true]]);
        assert!(!detected[0]);
    }

    #[test]
    fn parallel_equals_serial() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        let mut rng = Rng::seed_from_u64(10);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..na).map(|_| rng.gen()).collect())
            .collect();
        let serial = stuck_coverage(&view, &faults, &patterns);
        for threads in [1, 2, 3, 8, 1000] {
            let parallel = stuck_coverage_parallel(&view, &faults, &patterns, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn no_patterns_no_detection() {
        let n = circuit();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_stuck_faults(&n);
        let detected = stuck_coverage(&view, &faults, &[]);
        assert!(detected.iter().all(|&d| !d));
    }
}
