//! PODEM test generation for stuck-at faults on the combinational test
//! view, plus justification-only mode (used for the V1 half of two-pattern
//! transition tests).

use flh_netlist::{CellId, CellKind};
use flh_rng::Rng;
use flh_sim::Logic;

use crate::fault::{Fault, FaultSite};
use crate::tview::TestView;

/// PODEM search controls.
#[derive(Clone, Debug, PartialEq)]
pub struct PodemConfig {
    /// Backtrack budget before declaring the fault aborted.
    pub max_backtracks: usize,
}

impl PodemConfig {
    /// Default budget, ample for ISCAS89-scale cones (the X-path check
    /// exhausts redundant faults long before the limit).
    pub fn paper_default() -> Self {
        PodemConfig {
            max_backtracks: 300,
        }
    }
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig::paper_default()
    }
}

/// A (possibly partial) test: one [`Logic`] per assignable of the view,
/// `X` meaning don't-care.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCube {
    /// Assignment in [`TestView::assignable`] order.
    pub assignment: Vec<Logic>,
}

impl TestCube {
    /// Fills don't-cares with random values.
    pub fn fill_random(&self, rng: &mut Rng) -> Vec<bool> {
        self.assignment
            .iter()
            .map(|v| v.to_bool().unwrap_or_else(|| rng.gen()))
            .collect()
    }

    /// Fills don't-cares with a constant.
    pub fn fill_constant(&self, value: bool) -> Vec<bool> {
        self.assignment
            .iter()
            .map(|v| v.to_bool().unwrap_or(value))
            .collect()
    }

    /// *Adjacent fill*: every don't-care repeats the value of the nearest
    /// specified bit to its left (the first run copies rightward). This is
    /// the classic low-shift-power fill — long constant runs minimize
    /// transitions travelling down the scan chain.
    pub fn fill_adjacent(&self) -> Vec<bool> {
        let mut out: Vec<Option<bool>> = self.assignment.iter().map(|v| v.to_bool()).collect();
        let mut last: Option<bool> = None;
        for slot in out.iter_mut() {
            match slot {
                Some(v) => last = Some(*v),
                None => *slot = last,
            }
        }
        // Leading X run: borrow from the right.
        let mut next: Option<bool> = None;
        for slot in out.iter_mut().rev() {
            match slot {
                Some(v) => next = Some(*v),
                None => *slot = next,
            }
        }
        out.into_iter().map(|v| v.unwrap_or(false)).collect()
    }

    /// Number of specified (non-X) bits.
    pub fn specified_bits(&self) -> usize {
        self.assignment.iter().filter(|v| v.is_known()).count()
    }
}

enum Status {
    Detected,
    Conflict,
    Objective(CellId, bool),
}

/// PODEM engine over a test view.
pub struct Podem<'v, 'a> {
    view: &'v TestView<'a>,
    config: PodemConfig,
}

impl<'v, 'a> Podem<'v, 'a> {
    /// Creates an engine.
    pub fn new(view: &'v TestView<'a>, config: PodemConfig) -> Self {
        Podem { view, config }
    }

    /// Generates a test cube detecting `fault` while *also* satisfying the
    /// given line goals — the workhorse of constrained (e.g. broadside)
    /// test generation, where the extra goals encode launch conditions.
    pub fn generate_with_goals(&self, fault: &Fault, goals: &[(CellId, bool)]) -> Option<TestCube> {
        self.search(Some(fault), goals)
    }

    /// Generates a test cube detecting `fault`, or `None` if the fault is
    /// untestable or the backtrack budget ran out.
    ///
    /// # Example
    ///
    /// ```
    /// use flh_atpg::{Fault, Podem, PodemConfig, StuckValue, TestView};
    /// use flh_netlist::{CellKind, Netlist};
    /// use flh_sim::Logic;
    ///
    /// # fn main() -> Result<(), flh_netlist::NetlistError> {
    /// let mut n = Netlist::new("and");
    /// let a = n.add_input("a");
    /// let b = n.add_input("b");
    /// let g = n.add_cell("g", CellKind::And2, vec![a, b]);
    /// n.add_output("y", g);
    /// let view = TestView::new(&n)?;
    /// let podem = Podem::new(&view, PodemConfig::paper_default());
    /// let cube = podem.generate(&Fault::stem(g, StuckValue::Zero)).unwrap();
    /// assert_eq!(cube.assignment, vec![Logic::One, Logic::One]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(&self, fault: &Fault) -> Option<TestCube> {
        self.search(Some(fault), &[])
    }

    /// Finds an assignment that justifies `cell = value` in the fault-free
    /// circuit, or `None` if impossible within the budget.
    pub fn justify(&self, cell: CellId, value: bool) -> Option<TestCube> {
        self.search(None, &[(cell, value)])
    }

    /// Finds an assignment satisfying *all* the given line objectives
    /// simultaneously (used for path-delay sensitization, where every
    /// off-path input needs its non-controlling value at once).
    pub fn justify_all(&self, goals: &[(CellId, bool)]) -> Option<TestCube> {
        if goals.is_empty() {
            return Some(TestCube {
                assignment: vec![Logic::X; self.view.assignable().len()],
            });
        }
        self.search(None, goals)
    }

    fn search(&self, fault: Option<&Fault>, justify: &[(CellId, bool)]) -> Option<TestCube> {
        let n = self.view.assignable().len();
        let mut assignment = vec![Logic::X; n];
        // Decision stack: (assignable index, current value, other tried).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let good = self.view.eval3(&assignment, None);
            let status = if let Some(f) = fault {
                // Side goals first: contradicted => dead branch; unknown
                // goals become objectives once the fault itself is covered.
                let mut goal_pending: Option<(CellId, bool)> = None;
                let mut goal_conflict = false;
                for &(cell, value) in justify {
                    match good[cell.index()].to_bool() {
                        Some(v) if v == value => {}
                        Some(_) => {
                            goal_conflict = true;
                            break;
                        }
                        None => {
                            if goal_pending.is_none() {
                                goal_pending = Some((cell, value));
                            }
                        }
                    }
                }
                if goal_conflict {
                    Status::Conflict
                } else {
                    let faulty = self.view.eval3(&assignment, Some(f));
                    match self.fault_status(f, &good, &faulty) {
                        Status::Detected => match goal_pending {
                            Some((cell, value)) => Status::Objective(cell, value),
                            None => Status::Detected,
                        },
                        other => other,
                    }
                }
            } else {
                // Multi-goal justification: conflict beats objective beats
                // success, scanning all goals.
                let mut status = Status::Detected;
                for &(cell, value) in justify {
                    match good[cell.index()].to_bool() {
                        Some(v) if v == value => {}
                        Some(_) => {
                            status = Status::Conflict;
                            break;
                        }
                        None => {
                            if matches!(status, Status::Detected) {
                                status = Status::Objective(cell, value);
                            }
                        }
                    }
                }
                status
            };

            match status {
                Status::Detected => {
                    return Some(TestCube { assignment });
                }
                Status::Conflict => {
                    if !self.backtrack(&mut assignment, &mut stack, &mut backtracks) {
                        return None;
                    }
                }
                Status::Objective(cell, value) => match self.backtrace(cell, value, &good) {
                    Some((input, v)) => {
                        assignment[input] = Logic::from_bool(v);
                        stack.push((input, v, false));
                    }
                    None => {
                        if !self.backtrack(&mut assignment, &mut stack, &mut backtracks) {
                            return None;
                        }
                    }
                },
            }
            if backtracks > self.config.max_backtracks {
                return None;
            }
        }
    }

    fn backtrack(
        &self,
        assignment: &mut [Logic],
        stack: &mut Vec<(usize, bool, bool)>,
        backtracks: &mut usize,
    ) -> bool {
        while let Some((input, value, tried_other)) = stack.pop() {
            assignment[input] = Logic::X;
            if !tried_other {
                *backtracks += 1;
                // Search shape depends only on the view, fault and goals —
                // deterministic at any pool width.
                flh_obs::add(flh_obs::Counter::PodemBacktracks, 1);
                assignment[input] = Logic::from_bool(!value);
                stack.push((input, !value, true));
                return true;
            }
        }
        false
    }

    /// Determines success / failure / next objective for a fault goal.
    fn fault_status(&self, fault: &Fault, good: &[Logic], faulty: &[Logic]) -> Status {
        // Detection at an observation point?
        let obs_good = self.view.observe3(good);
        let obs_faulty = self.view.observe3(faulty);
        if obs_good
            .iter()
            .zip(&obs_faulty)
            .any(|(g, f)| g.is_known() && f.is_known() && g != f)
        {
            return Status::Detected;
        }

        // Activation: the faulted line's good value must be the opposite of
        // the stuck value.
        let line_driver = fault.driver(self.view.netlist());
        let want = !fault.stuck.as_bool();
        match good[line_driver.index()].to_bool() {
            Some(v) if v != want => return Status::Conflict,
            None => return Status::Objective(line_driver, want),
            Some(_) => {}
        }

        // Propagation: find the D-frontier and pick an X input to set to a
        // non-controlling value.
        let netlist = self.view.netlist();
        let has_d = |cell: CellId| -> bool {
            good[cell.index()].is_known()
                && faulty[cell.index()].is_known()
                && good[cell.index()] != faulty[cell.index()]
        };

        // X-path check: the fault effect must be able to reach some
        // observation through cells that are still unresolved. Without such
        // a path the branch is hopeless — this is what keeps redundant
        // faults cheap to prove.
        if !self.x_path_exists(fault, good, faulty) {
            return Status::Conflict;
        }
        for (id, cell) in netlist.iter() {
            let kind = cell.kind();
            if kind == CellKind::Output {
                continue;
            }
            // Output still unresolved in at least one circuit?
            let unresolved = !good[id.index()].is_known() || !faulty[id.index()].is_known();
            if !unresolved {
                continue;
            }
            // Any input carrying the fault effect (including an injected
            // branch pin)?
            let mut d_input = false;
            for (pin, &f) in cell.fanin().iter().enumerate() {
                let branch_injected = matches!(
                    fault.site,
                    FaultSite::Branch { gate, pin: p } if gate == id && p == pin
                );
                if branch_injected {
                    if good[f.index()].to_bool() == Some(want) {
                        d_input = true;
                    }
                } else if has_d(f) {
                    d_input = true;
                }
            }
            if !d_input {
                continue;
            }
            // Frontier gate found: objective = first X input to its
            // non-controlling value.
            for (pin, &f) in cell.fanin().iter().enumerate() {
                if !good[f.index()].is_known() {
                    return Status::Objective(f, noncontrolling(kind, pin));
                }
            }
        }
        // Fault activated but nothing can propagate further.
        Status::Conflict
    }

    /// Forward reachability from the fault effect through unresolved cells
    /// to any observation point.
    fn x_path_exists(&self, fault: &Fault, good: &[Logic], faulty: &[Logic]) -> bool {
        let netlist = self.view.netlist();
        let compiled = self.view.compiled();
        let unresolved =
            |c: CellId| -> bool { !good[c.index()].is_known() || !faulty[c.index()].is_known() };
        let has_d = |c: CellId| -> bool {
            good[c.index()].is_known()
                && faulty[c.index()].is_known()
                && good[c.index()] != faulty[c.index()]
        };

        // Seeds: every cell currently carrying the effect, plus the branch
        // gate itself for branch faults (its injected pin carries a D that
        // the value arrays cannot show).
        let mut reach = vec![false; netlist.cell_count()];
        let mut stack: Vec<CellId> = Vec::new();
        for id in netlist.ids() {
            if has_d(id) {
                stack.push(id);
            }
        }
        if let FaultSite::Branch { gate, .. } = fault.site {
            if unresolved(gate) && !reach[gate.index()] {
                reach[gate.index()] = true;
                stack.push(gate);
            }
        }
        let driver = fault.driver(netlist);
        if good[driver.index()].to_bool() == Some(!fault.stuck.as_bool()) {
            stack.push(driver);
        }
        while let Some(id) = stack.pop() {
            for &rd in compiled.readers(id.index() as u32) {
                let r = CellId::from_index(rd as usize);
                if reach[r.index()] {
                    continue;
                }
                let kind = compiled.kind(rd);
                if kind == flh_netlist::CellKind::Output {
                    return true; // effect can reach a primary output
                }
                if kind.is_flip_flop() {
                    return true; // effect can reach a flip-flop D capture
                }
                if unresolved(r) {
                    reach[r.index()] = true;
                    stack.push(r);
                }
            }
        }
        false
    }

    /// Walks an objective back to an unassigned primary input / flip-flop.
    fn backtrace(
        &self,
        mut cell: CellId,
        mut value: bool,
        good: &[Logic],
    ) -> Option<(usize, bool)> {
        let netlist = self.view.netlist();
        loop {
            if let Some(idx) = self.view.assignable_index(cell) {
                // Already assigned assignables are not re-decided.
                if good[cell.index()].is_known() {
                    return None;
                }
                return Some((idx, value));
            }
            let kind = netlist.cell(cell).kind();
            if matches!(kind, CellKind::Const0 | CellKind::Const1) {
                return None;
            }
            // Choose an X-valued fanin to continue through.
            let next = netlist
                .cell(cell)
                .fanin()
                .iter()
                .copied()
                .find(|&f| !good[f.index()].is_known())?;
            if inverts(kind) {
                value = !value;
            }
            cell = next;
        }
    }
}

/// Whether a backtrace through this cell flips the objective value.
fn inverts(kind: CellKind) -> bool {
    use CellKind::*;
    matches!(
        kind,
        Inv | Nand2
            | Nand3
            | Nand4
            | Nor2
            | Nor3
            | Nor4
            | Xnor2
            | Aoi21
            | Aoi22
            | Oai21
            | Oai22
            | NandN(_)
            | NorN(_)
    )
}

/// Heuristic non-controlling value per gate kind and pin, used for
/// propagation objectives. PODEM's backtracking recovers from imperfect
/// choices on the complex gates.
fn noncontrolling(kind: CellKind, pin: usize) -> bool {
    use CellKind::*;
    match kind {
        And2 | And3 | And4 | Nand2 | Nand3 | Nand4 | AndN(_) | NandN(_) => true,
        Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4 | OrN(_) | NorN(_) => false,
        Xor2 | Xnor2 | XorN(_) => false,
        // Complex gates: 0 on an AND-pair pin kills that product term, and
        // 0 on the OR-side pin leaves the other term in control — a safe
        // default for every pin, with backtracking correcting the cases
        // where the partner pin carries the effect.
        Aoi21 | Aoi22 | Oai21 | Oai22 => false,
        Mux2 => false,
        _ => {
            let _ = pin; // pin-insensitive kinds
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use flh_netlist::{generate_circuit, GeneratorConfig, Netlist};

    fn view_podem(n: &Netlist) -> TestView<'_> {
        TestView::new(n).unwrap()
    }

    #[test]
    fn and_gate_tests() {
        let mut n = Netlist::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::And2, vec![a, b]);
        n.add_output("y", g);
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        // s-a-0 at output: needs a=b=1.
        let cube = podem.generate(&Fault::stem(g, StuckValue::Zero)).unwrap();
        assert_eq!(cube.assignment, vec![Logic::One, Logic::One]);
        // s-a-1 at output: any input 0; the cube must detect it.
        let cube = podem.generate(&Fault::stem(g, StuckValue::One)).unwrap();
        assert!(cube.assignment.contains(&Logic::Zero));
        // s-a-1 on input a: a=0, b=1.
        let cube = podem.generate(&Fault::stem(a, StuckValue::One)).unwrap();
        assert_eq!(cube.assignment, vec![Logic::Zero, Logic::One]);
    }

    #[test]
    fn redundant_fault_is_untestable() {
        // y = AND(a, NOT a) is constant 0: s-a-0 at y is undetectable.
        let mut n = Netlist::new("red");
        let a = n.add_input("a");
        let inv = n.add_cell("inv", CellKind::Inv, vec![a]);
        let g = n.add_cell("g", CellKind::And2, vec![a, inv]);
        n.add_output("y", g);
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        assert!(podem.generate(&Fault::stem(g, StuckValue::Zero)).is_none());
        // s-a-1 at y IS detectable (any input pattern).
        assert!(podem.generate(&Fault::stem(g, StuckValue::One)).is_some());
    }

    #[test]
    fn propagation_through_reconvergence() {
        // y = XOR(a, AND(a,b)): fault on the AND must propagate through
        // the XOR with a side input involved in the fault cone.
        let mut n = Netlist::new("reconv");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::And2, vec![a, b]);
        let x = n.add_cell("x", CellKind::Xor2, vec![a, g]);
        n.add_output("y", x);
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        let cube = podem.generate(&Fault::stem(g, StuckValue::Zero)).unwrap();
        // Verify by simulation.
        let mut rng = Rng::seed_from_u64(1);
        let bits = cube.fill_random(&mut rng);
        let words: Vec<u64> = bits.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let good = view.observe64(&view.eval64(&words, None));
        let bad = view.observe64(&view.eval64(&words, Some(&Fault::stem(g, StuckValue::Zero))));
        assert_ne!(good[0] & 1, bad[0] & 1);
    }

    #[test]
    fn justification() {
        let mut n = Netlist::new("just");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Nor2, vec![a, b]);
        n.add_output("y", g);
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        let cube = podem.justify(g, true).unwrap();
        assert_eq!(cube.assignment, vec![Logic::Zero, Logic::Zero]);
        let cube = podem.justify(g, false).unwrap();
        let vals = view.eval3(&cube.assignment, None);
        assert_eq!(vals[g.index()], Logic::Zero);
    }

    #[test]
    fn justify_impossible_value_fails() {
        let mut n = Netlist::new("k");
        let a = n.add_input("a");
        let k = n.add_cell("k", CellKind::Const0, vec![]);
        let g = n.add_cell("g", CellKind::And2, vec![a, k]);
        n.add_output("y", g);
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        assert!(podem.justify(g, true).is_none());
        assert!(podem.justify(g, false).is_some());
    }

    /// Every PODEM-generated test must actually detect its fault when
    /// simulated, across a generated circuit's whole fault list.
    #[test]
    fn generated_tests_verify_by_simulation() {
        let n = generate_circuit(&GeneratorConfig {
            name: "podem_ver".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 6,
            gates: 60,
            logic_depth: 6,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 31,
        })
        .unwrap();
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        let faults = enumerate_stuck_faults(&n);
        let mut rng = Rng::seed_from_u64(2);
        let mut generated = 0;
        for fault in &faults {
            if let Some(cube) = podem.generate(fault) {
                generated += 1;
                let bits = cube.fill_random(&mut rng);
                let words: Vec<u64> = bits.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let good = view.observe64(&view.eval64(&words, None));
                let bad = view.observe64(&view.eval64(&words, Some(fault)));
                let detected = good.iter().zip(&bad).any(|(g, b)| (g ^ b) & 1 != 0);
                assert!(detected, "cube fails to detect {fault:?}");
            }
        }
        // Most of the fault universe is testable; the rest is genuine
        // redundancy (verified exhaustively in `podem_is_complete`).
        assert!(
            generated as f64 >= 0.75 * faults.len() as f64,
            "only {generated}/{} testable",
            faults.len()
        );
    }

    /// PODEM must be *complete* on circuits small enough for exhaustive
    /// cross-checking: it finds a test iff one exists.
    #[test]
    fn podem_is_complete() {
        let n = generate_circuit(&GeneratorConfig {
            name: "podem_complete".into(),
            primary_inputs: 4,
            primary_outputs: 3,
            flip_flops: 4,
            gates: 40,
            logic_depth: 5,
            avg_ff_fanout: 2.2,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 63,
        })
        .unwrap();
        let view = view_podem(&n);
        let podem = Podem::new(&view, PodemConfig::paper_default());
        let faults = enumerate_stuck_faults(&n);
        let na = view.assignable().len();
        assert!(na <= 16, "keep the exhaustive check tractable");
        for fault in &faults {
            let found = podem.generate(fault).is_some();
            let testable = (0u64..(1 << na)).any(|bits| {
                let words: Vec<u64> = (0..na)
                    .map(|i| if bits >> i & 1 == 1 { !0 } else { 0 })
                    .collect();
                let good = view.observe64(&view.eval64(&words, None));
                let bad = view.observe64(&view.eval64(&words, Some(fault)));
                good.iter().zip(&bad).any(|(g, b)| (g ^ b) & 1 != 0)
            });
            assert_eq!(found, testable, "PODEM disagrees on {fault:?}");
        }
    }

    #[test]
    fn cube_utilities() {
        let cube = TestCube {
            assignment: vec![Logic::One, Logic::X, Logic::Zero],
        };
        assert_eq!(cube.specified_bits(), 2);
        let mut rng = Rng::seed_from_u64(3);
        let bits = cube.fill_random(&mut rng);
        assert!(bits[0]);
        assert!(!bits[2]);
    }

    #[test]
    fn fill_strategies() {
        use Logic::{One as I, Zero as O, X};
        let cube = TestCube {
            assignment: vec![X, I, X, X, O, X],
        };
        assert_eq!(
            cube.fill_constant(false),
            vec![false, true, false, false, false, false]
        );
        // Adjacent: leading X copies the first specified bit; inner X runs
        // repeat their left neighbour.
        assert_eq!(
            cube.fill_adjacent(),
            vec![true, true, true, true, false, false]
        );
        // All-X cube falls back to zeros.
        let empty = TestCube {
            assignment: vec![X, X],
        };
        assert_eq!(empty.fill_adjacent(), vec![false, false]);
        // Specified bits are never altered by any fill.
        for bits in [
            cube.fill_constant(true),
            cube.fill_adjacent(),
            cube.fill_random(&mut Rng::seed_from_u64(1)),
        ] {
            assert!(bits[1]);
            assert!(!bits[4]);
        }
    }

    #[test]
    fn adjacent_fill_minimizes_transitions() {
        use Logic::X;
        let mut rng = Rng::seed_from_u64(8);
        let cube = TestCube {
            assignment: (0..64)
                .map(|i| {
                    if i % 7 == 0 {
                        Logic::from_bool(i % 14 == 0)
                    } else {
                        X
                    }
                })
                .collect(),
        };
        let transitions =
            |bits: &[bool]| -> usize { bits.windows(2).filter(|w| w[0] != w[1]).count() };
        let adj = transitions(&cube.fill_adjacent());
        let rnd = transitions(&cube.fill_random(&mut rng));
        assert!(adj < rnd, "adjacent {adj} !< random {rnd}");
    }
}
