//! Deterministic broadside (launch-on-capture) transition ATPG via
//! two-timeframe expansion.
//!
//! The paper's introduction notes that broadside application needs no
//! holding hardware but "can suffer from poor fault coverage": the second
//! pattern's state part is not free — it must be the circuit's own
//! response to V1. This module quantifies that ceiling *deterministically*:
//! the circuit is unrolled into two combinational frames
//! ([`TwoFrameUnrolling`]), the launch condition becomes a side goal on the
//! frame-1 copy, the detection becomes a stuck-at fault on the frame-2
//! copy, and the goal-constrained PODEM solves the sequential
//! justification exactly.

use flh_netlist::{CellId, CellKind, Netlist, Packed256, PatternWord, TwoFrameUnrolling};
use flh_rng::Rng;

use crate::fault::{Fault, StuckValue};
use crate::podem::{Podem, PodemConfig};
use crate::transition::{TransitionFault, TransitionSimulator};
use crate::tview::TestView;

/// One broadside test: V1 in full, V2's primary-input part (its state part
/// is the circuit's response to V1 by construction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadsidePattern {
    /// First pattern, primary inputs.
    pub pi1: Vec<bool>,
    /// First pattern, state part.
    pub state1: Vec<bool>,
    /// Second pattern, primary inputs.
    pub pi2: Vec<bool>,
}

/// Result of a deterministic broadside ATPG run.
#[derive(Clone, Debug)]
pub struct BroadsideAtpgResult {
    /// Generated broadside tests.
    pub patterns: Vec<BroadsidePattern>,
    /// Per-fault detection flags (aligned with the input fault list).
    pub detected: Vec<bool>,
}

impl BroadsideAtpgResult {
    /// Detected-fault count.
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Coverage in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.detected.is_empty() {
            100.0
        } else {
            100.0 * self.detected_count() as f64 / self.detected.len() as f64
        }
    }
}

/// Unrolls with isolation buffers on the frame-2 state nodes, so a stuck-at
/// injection at a flip-flop's frame-2 value perturbs *only* frame-2 logic
/// (the physical transition happens at the capture edge).
type FrameMap = Vec<Option<CellId>>;

fn unroll_with_state_buffers(
    original: &Netlist,
) -> flh_netlist::Result<(Netlist, FrameMap, FrameMap)> {
    let u = TwoFrameUnrolling::build(original)?;
    let mut netlist = u.netlist.clone();
    let frame1 = u.frame1.clone();
    let mut frame2 = u.frame2.clone();
    for &ff in original.flip_flops() {
        let shared = frame2[ff.index()].expect("frame-2 state mapped");
        let name = netlist.fresh_name("f2state_");
        let buf = netlist.add_cell(name, CellKind::Buf, vec![shared]);
        // Frame-2 logic must read the buffer; frame-1 readers keep the
        // shared node. Frame-2 readers are exactly the cells created after
        // the frame-1 block, identifiable by their `_f2` names.
        let readers: Vec<CellId> = netlist
            .ids()
            .filter(|&r| {
                r != buf
                    && netlist.cell(r).fanin().contains(&shared)
                    && netlist.cell(r).name().ends_with("_f2")
            })
            .collect();
        netlist.redirect_selected_readers(shared, buf, &readers);
        // The unrolled FF's D pin observes frame-2 next state, which may be
        // this very node (FF feeding another FF in the original): leave FF
        // D pins on the unbuffered node — the capture in cycle 2 reads the
        // frame-2 function, and frame-2 D drivers all live in `_f2` cells
        // or are state nodes themselves; a slow FF output also corrupts
        // captures, so redirect FF D pins reading the shared node too.
        let ff_readers: Vec<CellId> = netlist
            .ids()
            .filter(|&r| {
                netlist.cell(r).kind().is_flip_flop() && netlist.cell(r).fanin().contains(&shared)
            })
            .collect();
        netlist.redirect_selected_readers(shared, buf, &ff_readers);
        frame2[ff.index()] = Some(buf);
    }
    netlist.validate()?;
    Ok((netlist, frame1, frame2))
}

/// Runs deterministic broadside transition ATPG with fault dropping.
///
/// `faults` are transition faults on `original`; the returned coverage is
/// the *broadside-reachable* ceiling (up to the PODEM backtrack budget).
/// Every generated pattern is verified by sequential resimulation before
/// being kept.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn broadside_transition_atpg(
    original: &Netlist,
    faults: &[TransitionFault],
    config: &PodemConfig,
    seed: u64,
) -> flh_netlist::Result<BroadsideAtpgResult> {
    let (unrolled, frame1, frame2) = unroll_with_state_buffers(original)?;
    let view2 = TestView::new(&unrolled)?;
    let podem = Podem::new(&view2, config.clone());

    // Views of the original for the sequential verification / dropping.
    let view1 = TestView::new(original)?;
    let mut seq_sim = TransitionSimulator::new(&view1);

    let n_pi = original.inputs().len();
    let n_ff = original.flip_flops().len();
    let mut rng = Rng::seed_from_u64(seed);
    let mut detected = vec![false; faults.len()];
    let mut patterns = Vec::new();

    // The sequential capture: returns (v1, v2) assignments for the original
    // circuit from a broadside pattern.
    let seq_pair = |p: &BroadsidePattern| -> (Vec<u64>, Vec<u64>) {
        let mut v1 = Vec::with_capacity(n_pi + n_ff);
        for &b in &p.pi1 {
            v1.push(if b { !0u64 } else { 0 });
        }
        for &b in &p.state1 {
            v1.push(if b { !0u64 } else { 0 });
        }
        let good1 = view1.eval64(&v1, None);
        let mut v2 = Vec::with_capacity(n_pi + n_ff);
        for &b in &p.pi2 {
            v2.push(if b { !0u64 } else { 0 });
        }
        for &ff in original.flip_flops() {
            let d = original.cell(ff).fanin()[0];
            v2.push(good1[d.index()]);
        }
        (v1, v2)
    };

    for fi in 0..faults.len() {
        if detected[fi] {
            continue;
        }
        let fault = faults[fi];
        let s1 = match frame1[fault.site.index()] {
            Some(c) => c,
            None => continue,
        };
        let s2 = match frame2[fault.site.index()] {
            Some(c) => c,
            None => continue,
        };
        let stuck = if fault.initial_value() {
            StuckValue::One
        } else {
            StuckValue::Zero
        };
        let Some(cube) =
            podem.generate_with_goals(&Fault::stem(s2, stuck), &[(s1, fault.initial_value())])
        else {
            continue;
        };
        let bits = cube.fill_random(&mut rng);
        let pattern = BroadsidePattern {
            pi1: bits[..n_pi].to_vec(),
            pi2: bits[n_pi..2 * n_pi].to_vec(),
            state1: bits[2 * n_pi..].to_vec(),
        };
        // Verify and drop against all remaining faults sequentially (the
        // pair rides in lane 0 of the superword batch).
        let (v1, v2) = seq_pair(&pattern);
        let w1: Vec<Packed256> = v1.iter().map(|&w| Packed256::from_word(w)).collect();
        let w2: Vec<Packed256> = v2.iter().map(|&w| Packed256::from_word(w)).collect();
        let hits = seq_sim.run_batch(&w1, &w2, Packed256::lane_bit(0), faults, &mut detected);
        debug_assert!(
            detected[fi],
            "broadside pattern failed sequential verification for {fault:?}"
        );
        if hits > 0 {
            patterns.push(pattern);
        }
    }

    Ok(BroadsideAtpgResult { patterns, detected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::{random_transition_campaign, ApplicationStyle};
    use crate::transition::{enumerate_transition_faults, transition_atpg};
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "brd".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 7,
            gates: 60,
            logic_depth: 6,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 31,
        })
        .unwrap()
    }

    #[test]
    fn broadside_atpg_verifies_sequentially() {
        // Every generated pattern already passed the debug assertion; here
        // the release-mode check: resimulate the whole set and compare.
        let n = circuit();
        let faults = enumerate_transition_faults(&n);
        let result =
            broadside_transition_atpg(&n, &faults, &PodemConfig::paper_default(), 5).unwrap();
        assert!(result.detected_count() > 0);
        // Rebuild detection from scratch using the sequential pairs.
        let view = TestView::new(&n).unwrap();
        let mut sim = TransitionSimulator::new(&view);
        let mut redetected = vec![false; faults.len()];
        for p in &result.patterns {
            let mut v1: Vec<u64> = p.pi1.iter().map(|&b| if b { !0 } else { 0 }).collect();
            v1.extend(p.state1.iter().map(|&b| if b { !0u64 } else { 0 }));
            let good1 = view.eval64(&v1, None);
            let mut v2: Vec<u64> = p.pi2.iter().map(|&b| if b { !0 } else { 0 }).collect();
            for &ff in n.flip_flops() {
                let d = n.cell(ff).fanin()[0];
                v2.push(good1[d.index()]);
            }
            let w1: Vec<Packed256> = v1.iter().map(|&w| Packed256::from_word(w)).collect();
            let w2: Vec<Packed256> = v2.iter().map(|&w| Packed256::from_word(w)).collect();
            sim.run_batch(&w1, &w2, Packed256::lane_bit(0), &faults, &mut redetected);
        }
        let re = redetected.iter().filter(|&&d| d).count();
        assert_eq!(re, result.detected_count());
    }

    #[test]
    fn deterministic_broadside_beats_random_broadside() {
        let n = circuit();
        let faults = enumerate_transition_faults(&n);
        let det = broadside_transition_atpg(&n, &faults, &PodemConfig::paper_default(), 5).unwrap();
        let rnd = random_transition_campaign(&n, ApplicationStyle::Broadside, 2048, 5).unwrap();
        assert!(
            det.coverage_pct() >= rnd.coverage_pct(),
            "deterministic {} < random {}",
            det.coverage_pct(),
            rnd.coverage_pct()
        );
    }

    #[test]
    fn arbitrary_application_dominates_the_broadside_ceiling() {
        // The paper's core coverage claim, now with *deterministic* test
        // generation on both sides.
        let n = circuit();
        let faults = enumerate_transition_faults(&n);
        let broadside =
            broadside_transition_atpg(&n, &faults, &PodemConfig::paper_default(), 5).unwrap();
        let view = TestView::new(&n).unwrap();
        let arbitrary = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 5);
        assert!(
            arbitrary.coverage_pct() >= broadside.coverage_pct(),
            "arbitrary {} < broadside {}",
            arbitrary.coverage_pct(),
            broadside.coverage_pct()
        );
    }

    #[test]
    fn result_is_deterministic() {
        let n = circuit();
        let faults = enumerate_transition_faults(&n);
        let a = broadside_transition_atpg(&n, &faults, &PodemConfig::paper_default(), 9).unwrap();
        let b = broadside_transition_atpg(&n, &faults, &PodemConfig::paper_default(), 9).unwrap();
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.detected, b.detected);
    }
}
