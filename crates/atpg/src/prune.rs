//! Static fault pruning: thread the §2i bytecode analyses into ATPG.
//!
//! A [`StaticFilter`] runs `flh_netlist::static_analysis::analyze` once per
//! test view and classifies stuck-at and transition faults as *statically
//! untestable* — provably undetectable from the constant lattice and the
//! sensitization-aware observability sweep alone, before PODEM or a fault
//! simulator ever touches them. The classification is deliberately
//! one-sided: a fault it keeps may still be untestable (PODEM finds out),
//! but a fault it prunes must never be detected by simulation. The bench
//! suite enforces that contract across every profile × DFT style, and the
//! `flh analyze --check-sim` gate re-checks it in CI.
//!
//! # Classification rules
//!
//! With `constants` the ternary fixpoint and `obs_struct`/`obs_sens` the
//! observability planes (see `flh_netlist::static_analysis` for why each
//! fact survives fault injection):
//!
//! * **Stem stuck-at-v**: untestable when the line is constant `v` (never
//!   activated); when non-constant, untestable if no sensitizable path
//!   exists (`!obs_sens`); when constant `!v`, the faulty machine breaks
//!   the lattice, so only the structural answer (`!obs_struct`) may prune.
//! * **Branch stuck-at-v** on pin `p` of gate `g` driven by `d`: untestable
//!   when `d` is constant `v`; when a definite side pin blocks pin `p` at
//!   `g` (side pins are good-machine values, valid in every faulty
//!   machine); otherwise, a difference at `g`'s output must survive —
//!   `!obs_sens(g)` prunes when `d` is non-constant, `!obs_struct(g)` when
//!   the fault contradicts `d`'s constant. A branch directly on a
//!   flip-flop D pin is itself observed and is only pruned by activation.
//! * **Transition at s**: untestable when `s` is constant (cannot launch a
//!   transition) or `!obs_sens(s)` (V2 cannot make the slow edge visible).

use std::sync::Arc;

use flh_netlist::static_analysis::{analyze, pin_blocked, StaticAnalysis};
use flh_netlist::{CellKind, CompiledCircuit};

use crate::fault::{Fault, FaultSite};
use crate::fsim::{order_stuck_faults, stuck_coverage_partitioned};
use crate::transition::{order_transition_faults, TransitionFault};
use crate::tview::TestView;
use flh_exec::ThreadPool;

/// Fault classifier backed by the static analyses of one compiled circuit.
pub struct StaticFilter {
    compiled: Arc<CompiledCircuit>,
    analysis: StaticAnalysis,
}

impl StaticFilter {
    /// Run the analyses against a test view's compiled circuit and program.
    pub fn from_view(view: &TestView<'_>) -> Self {
        let compiled = view.compiled_arc();
        let analysis = analyze(&compiled, view.program());
        StaticFilter { compiled, analysis }
    }

    /// The underlying analysis bundle (constants, liveness, observability,
    /// SCOAP).
    pub fn analysis(&self) -> &StaticAnalysis {
        &self.analysis
    }

    /// Is the stuck-at fault provably undetectable from structure alone?
    pub fn stuck_untestable(&self, fault: &Fault) -> bool {
        let a = &self.analysis;
        let v = fault.stuck.as_bool();
        match fault.site {
            FaultSite::Stem(cell) => {
                let s = self.compiled.id_of(cell) as usize;
                match a.constants[s] {
                    Some(c) if c == v => true,
                    Some(_) => !a.obs.obs_struct[s],
                    None => !a.obs.obs_sens[s],
                }
            }
            FaultSite::Branch { gate, pin } => {
                let g = self.compiled.id_of(gate);
                let d = self.compiled.fanin(g)[pin] as usize;
                if a.constants[d] == Some(v) {
                    return true;
                }
                let gk = self.compiled.kind(g);
                // A fanout branch ending on a flip-flop D pin is directly
                // observed; only a constant driver can rule it out.
                if matches!(gk, CellKind::Dff | CellKind::ScanDff) {
                    return false;
                }
                let side: Vec<Option<bool>> = self
                    .compiled
                    .fanin(g)
                    .iter()
                    .map(|&f| a.constants[f as usize])
                    .collect();
                if pin_blocked(gk, pin, &side) {
                    return true;
                }
                let gi = g as usize;
                match a.constants[d] {
                    None => !a.obs.obs_sens[gi],
                    Some(_) => !a.obs.obs_struct[gi],
                }
            }
        }
    }

    /// Is the transition fault provably undetectable from structure alone?
    pub fn transition_untestable(&self, fault: &TransitionFault) -> bool {
        let s = self.compiled.id_of(fault.site) as usize;
        self.analysis.constants[s].is_some() || !self.analysis.obs.obs_sens[s]
    }

    /// Split a stuck-at fault list into the kept faults (original order),
    /// their indices in the input list, and the pruned count.
    pub fn prune_stuck(&self, faults: &[Fault]) -> PruneOutcome<Fault> {
        prune_by(faults, |f| self.stuck_untestable(f))
    }

    /// Split a transition fault list the same way.
    pub fn prune_transition(&self, faults: &[TransitionFault]) -> PruneOutcome<TransitionFault> {
        prune_by(faults, |f| self.transition_untestable(f))
    }
}

/// Result of a prune pass over a fault list.
#[derive(Clone, Debug)]
pub struct PruneOutcome<T> {
    /// Faults the filter could not rule out, in input order.
    pub kept: Vec<T>,
    /// `kept[i]` sat at `kept_index[i]` in the input list.
    pub kept_index: Vec<usize>,
    /// Faults classified statically untestable.
    pub pruned: usize,
}

fn prune_by<T: Copy>(faults: &[T], mut untestable: impl FnMut(&T) -> bool) -> PruneOutcome<T> {
    let mut kept = Vec::with_capacity(faults.len());
    let mut kept_index = Vec::with_capacity(faults.len());
    for (i, f) in faults.iter().enumerate() {
        if !untestable(f) {
            kept.push(*f);
            kept_index.push(i);
        }
    }
    PruneOutcome {
        pruned: faults.len() - kept.len(),
        kept,
        kept_index,
    }
}

/// [`order_stuck_faults`] with a static prune step in front: the returned
/// list is level-major over only the faults the filter kept, plus the
/// pruned count.
pub fn order_stuck_faults_pruned(
    filter: &StaticFilter,
    compiled: &CompiledCircuit,
    faults: &[Fault],
) -> (Vec<Fault>, usize) {
    let outcome = filter.prune_stuck(faults);
    (order_stuck_faults(compiled, &outcome.kept), outcome.pruned)
}

/// [`order_transition_faults`] with a static prune step in front.
pub fn order_transition_faults_pruned(
    filter: &StaticFilter,
    compiled: &CompiledCircuit,
    faults: &[TransitionFault],
) -> (Vec<TransitionFault>, usize) {
    let outcome = filter.prune_transition(faults);
    (
        order_transition_faults(compiled, &outcome.kept),
        outcome.pruned,
    )
}

/// Pruned stuck-at coverage: simulate only the kept faults and scatter the
/// flags back to input order (pruned faults report undetected). Identical
/// to `stuck_coverage` on the full list whenever the filter is sound.
pub fn stuck_coverage_pruned(
    view: &TestView<'_>,
    filter: &StaticFilter,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    pool: &ThreadPool,
) -> Vec<bool> {
    let outcome = filter.prune_stuck(faults);
    let kept_flags = stuck_coverage_partitioned(view, &outcome.kept, patterns, pool);
    let mut flags = vec![false; faults.len()];
    for (&i, &d) in outcome.kept_index.iter().zip(&kept_flags) {
        flags[i] = d;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_stuck_faults, StuckValue};
    use crate::transition::{enumerate_transition_faults, TransitionKind};
    use flh_netlist::{CellKind, Netlist};

    /// g = And2(i0, const0) is constant-0 but observed; h = Xor2(i0, i1)
    /// is fully testable.
    fn fixture() -> Netlist {
        let mut n = Netlist::new("prune-fix");
        let i0 = n.add_input("i0");
        let i1 = n.add_input("i1");
        let c0 = n.add_cell("c0", CellKind::Const0, vec![]);
        let g = n.add_cell("g", CellKind::And2, vec![i0, c0]);
        let h = n.add_cell("h", CellKind::Xor2, vec![i0, i1]);
        n.add_output("yg", g);
        n.add_output("yh", h);
        n
    }

    #[test]
    fn constant_stem_classification() {
        let n = fixture();
        let view = TestView::new(&n).unwrap();
        let filter = StaticFilter::from_view(&view);
        let g = n.find("g").unwrap();
        let h = n.find("h").unwrap();
        // Stuck at the constant's own value: never activated.
        assert!(filter.stuck_untestable(&Fault::stem(g, StuckValue::Zero)));
        // Stuck at the opposite value on an observed line: testable.
        assert!(!filter.stuck_untestable(&Fault::stem(g, StuckValue::One)));
        assert!(!filter.stuck_untestable(&Fault::stem(h, StuckValue::Zero)));
        // A constant site cannot launch a transition.
        for kind in [TransitionKind::SlowToRise, TransitionKind::SlowToFall] {
            assert!(filter.transition_untestable(&TransitionFault { site: g, kind }));
            assert!(!filter.transition_untestable(&TransitionFault { site: h, kind }));
        }
    }

    #[test]
    fn pruned_coverage_matches_unpruned_on_the_fixture() {
        let n = fixture();
        let view = TestView::new(&n).unwrap();
        let filter = StaticFilter::from_view(&view);
        let faults = enumerate_stuck_faults(&n);
        let patterns: Vec<Vec<bool>> = (0..4)
            .map(|p| {
                (0..view.assignable().len())
                    .map(|i| (p >> i) & 1 == 1)
                    .collect()
            })
            .collect();
        let pool = ThreadPool::serial();
        let full = stuck_coverage_partitioned(&view, &faults, &patterns, &pool);
        let pruned = stuck_coverage_pruned(&view, &filter, &faults, &patterns, &pool);
        assert_eq!(full, pruned);
        // Soundness on the fixture: nothing pruned is ever detected.
        for (f, &d) in faults.iter().zip(&full) {
            if filter.stuck_untestable(f) {
                assert!(!d, "statically untestable fault detected: {f:?}");
            }
        }
    }

    #[test]
    fn prune_outcome_indices_point_back_into_the_input() {
        let n = fixture();
        let view = TestView::new(&n).unwrap();
        let filter = StaticFilter::from_view(&view);
        let faults = enumerate_transition_faults(&n);
        let outcome = filter.prune_transition(&faults);
        assert_eq!(outcome.kept.len() + outcome.pruned, faults.len());
        for (f, &i) in outcome.kept.iter().zip(&outcome.kept_index) {
            assert_eq!(*f, faults[i]);
        }
    }
}
