//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace must build and test fully offline, so instead of the
//! external `rand` crate every stochastic component (netlist generation,
//! ATPG X-fill, BIST pattern streams, Monte-Carlo experiments) draws from
//! this tiny in-tree generator. The core is **xoshiro256\*\*** (Blackman &
//! Vigna), seeded from a single `u64` through a **SplitMix64** expansion —
//! the exact construction recommended by the xoshiro authors. The generator
//! is deterministic across platforms and releases: the same seed always
//! yields the same stream, which the reproduction relies on for
//! reproducible tables and regression tests.
//!
//! The API mirrors the small slice of `rand` the workspace used
//! (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`, `shuffle`) so call
//! sites read the same as before.
//!
//! ```
//! use flh_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let word: u64 = rng.gen();
//! let coin: bool = rng.gen();
//! let idx = rng.gen_range(0..10usize);
//! assert!(idx < 10);
//! let mut v = [1, 2, 3, 4];
//! rng.shuffle(&mut v);
//! let _ = (word, coin);
//! ```

/// SplitMix64 step: used to expand a single `u64` seed into the four
/// xoshiro256** state words. Public so tests and profile hashing can reuse
/// the same mixing function.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic PRNG: xoshiro256** with SplitMix64 seeding.
///
/// Not cryptographically secure — it is a fast statistical generator for
/// simulation workloads. Cloning the struct forks the stream (both clones
/// continue identically), which some experiments use to replay a sequence.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator whose entire stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256** scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draw a value of any [`Random`] type (`u64`, `u32`, `bool`, `f64`),
    /// mirroring `rand::Rng::gen`. The type is usually inferred:
    /// `let w: u64 = rng.gen();`
    #[inline]
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform draw from a half-open range, mirroring `rand::Rng::gen_range`.
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a uniform f64 in [0, 1); p == 1.0 is always true.
        p >= 1.0 || f64_unit(self.next_u64()) < p
    }

    /// Fisher–Yates shuffle, mirroring `rand::seq::SliceRandom::shuffle`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
    #[inline]
    fn uniform_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the multiply-shift reduction unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Convert a raw word into a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn f64_unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce. Sealed in practice: implemented for the
/// primitives the workspace draws.
pub trait Random {
    /// Draw one uniformly distributed value.
    fn random(rng: &mut Rng) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        f64_unit(rng.next_u64())
    }
}

/// Types [`Rng::gen_range`] can sample from a `Range`.
pub trait UniformRange: Sized {
    /// Draw uniformly from `range` (half-open). Panics if empty.
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.uniform_below(span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

impl UniformRange for f64 {
    #[inline]
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64_unit(rng.next_u64()) * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector_is_stable() {
        // Pin the stream so refactors can't silently change every seeded
        // experiment in the workspace.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");

        for _ in 0..1000 {
            let f = rng.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "got {hits} of 10000 at p=0.25"
        );
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
