//! Property-based invariants across the workspace (proptest).

use flh::core::{apply_style, optimize_fanout, DftStyle, FanoutOptConfig};
use flh::netlist::bench_io::{parse_bench, write_bench};
use flh::netlist::{generate_circuit, CircuitStats, GeneratorConfig};
use flh::sim::value::eval3;
use flh::sim::{Logic, LogicSim};
use flh::tech::{CellLibrary, Technology};
use flh::timing::{analyze, TimingConfig};
use flh_netlist::CellKind;
use proptest::prelude::*;

/// Arbitrary small-but-interesting generator configurations.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..8,   // primary inputs
        1usize..6,   // primary outputs
        2usize..12,  // flip-flops
        3usize..10,  // logic depth
        0u64..1000,  // seed
        20usize..50, // extra gates beyond the minimum
    )
        .prop_map(|(pi, po, ff, depth, seed, extra)| {
            let flg = ((ff as f64) * 1.8).round() as usize;
            GeneratorConfig {
                name: format!("prop_{seed}"),
                primary_inputs: pi,
                primary_outputs: po,
                flip_flops: ff,
                gates: flg + depth - 1 + extra,
                logic_depth: depth,
                avg_ff_fanout: 2.3,
                unique_flg_ratio: 1.8,
                hot_ff_fanout: None,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated circuits always validate and hit their requested shape.
    #[test]
    fn generator_meets_spec(cfg in config_strategy()) {
        let n = generate_circuit(&cfg).expect("generates");
        n.validate().expect("valid");
        let stats = CircuitStats::compute(&n).expect("stats");
        prop_assert_eq!(stats.primary_inputs, cfg.primary_inputs);
        prop_assert_eq!(stats.primary_outputs, cfg.primary_outputs);
        prop_assert_eq!(stats.flip_flops, cfg.flip_flops);
        prop_assert_eq!(stats.gates, cfg.gates);
        prop_assert_eq!(stats.logic_depth as usize, cfg.logic_depth);
    }

    /// `.bench` serialization round-trips the full structure.
    #[test]
    fn bench_round_trip(cfg in config_strategy()) {
        let n = generate_circuit(&cfg).expect("generates");
        let text = write_bench(&n);
        let m = parse_bench(&text, n.name()).expect("parses");
        let a = CircuitStats::compute(&n).expect("stats");
        let b = CircuitStats::compute(&m).expect("stats");
        prop_assert_eq!(a, b);
        // And a second round-trip is textually stable.
        prop_assert_eq!(text, write_bench(&m));
    }

    /// Scan + holding transforms never change the sequential function.
    #[test]
    fn styles_preserve_function(cfg in config_strategy(), style_pick in 0usize..3) {
        let style = [DftStyle::PlainScan, DftStyle::EnhancedScan, DftStyle::MuxHold][style_pick];
        let n = generate_circuit(&cfg).expect("generates");
        let d = apply_style(&n, style).expect("applies");
        let mut sim_a = LogicSim::new(&n).expect("sim");
        let mut sim_b = LogicSim::new(&d.netlist).expect("sim");
        for i in 0..n.flip_flops().len() {
            let v = Logic::from_bool(i % 2 == 0);
            sim_a.set_ff_by_index(i, v);
            sim_b.set_ff_by_index(i, v);
        }
        for step in 0..10 {
            let vector: Vec<Logic> = (0..n.inputs().len())
                .map(|i| Logic::from_bool((step + i) % 3 == 0))
                .collect();
            sim_a.apply_vector(&vector);
            sim_b.apply_vector(&vector);
            prop_assert_eq!(sim_a.outputs(), sim_b.outputs());
            prop_assert_eq!(sim_a.ff_state(), sim_b.ff_state());
        }
    }

    /// Fanout optimization preserves function and never grows the gated set.
    #[test]
    fn fanout_opt_safety(cfg in config_strategy()) {
        let n = generate_circuit(&cfg).expect("generates");
        let flh = apply_style(&n, DftStyle::Flh).expect("flh");
        let result = optimize_fanout(&flh, &FanoutOptConfig::paper_default()).expect("opt");
        prop_assert!(result.flg_after <= result.flg_before);
        result.netlist.validate().expect("valid");
        let mut sim_a = LogicSim::new(&flh.netlist).expect("sim");
        let mut sim_b = LogicSim::new(&result.netlist).expect("sim");
        for i in 0..n.flip_flops().len() {
            sim_a.set_ff_by_index(i, Logic::Zero);
            sim_b.set_ff_by_index(i, Logic::Zero);
        }
        for step in 0..8 {
            let vector: Vec<Logic> = (0..n.inputs().len())
                .map(|i| Logic::from_bool((step * i) % 2 == 0))
                .collect();
            sim_a.apply_vector(&vector);
            sim_b.apply_vector(&vector);
            prop_assert_eq!(sim_a.outputs(), sim_b.outputs());
        }
    }

    /// STA: extra fanout load can only increase a driver's arrival time.
    #[test]
    fn sta_is_monotone_in_load(extra in 1usize..6) {
        let lib = CellLibrary::new(Technology::bptm70());
        let tc = TimingConfig::paper_default();
        let build = |loads: usize| {
            let mut n = flh::netlist::Netlist::new("mono");
            let a = n.add_input("a");
            let g = n.add_cell("g", CellKind::Inv, vec![a]);
            let s = n.add_cell("s", CellKind::Inv, vec![g]);
            for i in 0..loads {
                n.add_cell(format!("l{i}"), CellKind::Inv, vec![g]);
            }
            n.add_output("y", s);
            n
        };
        let base = build(0);
        let loaded = build(extra);
        let rb = analyze(&base, &lib, &tc, None).expect("sta");
        let rl = analyze(&loaded, &lib, &tc, None).expect("sta");
        let sb = base.find("s").expect("cell");
        let sl = loaded.find("s").expect("cell");
        prop_assert!(rl.arrival_ps(sl) > rb.arrival_ps(sb));
    }

    /// Three-valued evaluation agrees with two-valued evaluation on every
    /// fully-known input combination, for every library gate kind.
    #[test]
    fn eval3_matches_eval64_when_known(bits in 0u16..16) {
        for kind in [
            CellKind::Inv, CellKind::Buf, CellKind::Nand2, CellKind::Nor2,
            CellKind::And3, CellKind::Or3, CellKind::Xor2, CellKind::Xnor2,
            CellKind::Aoi21, CellKind::Oai21, CellKind::Aoi22, CellKind::Oai22,
            CellKind::Mux2, CellKind::Nand4,
        ] {
            let arity = kind.arity();
            let inputs: Vec<Logic> = (0..arity)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            let bools: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(
                eval3(kind, &inputs),
                Logic::from_bool(kind.eval_bool(&bools))
            );
        }
    }

    /// Pessimism property: replacing any known input by X never produces a
    /// *different* known value — it may only lose information.
    #[test]
    fn eval3_is_monotone_in_information(bits in 0u16..16, drop in 0usize..4) {
        for kind in [CellKind::Nand3, CellKind::Aoi21, CellKind::Mux2, CellKind::Xor2] {
            let arity = kind.arity();
            let drop = drop % arity;
            let full: Vec<Logic> = (0..arity)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            let mut weaker = full.clone();
            weaker[drop] = Logic::X;
            let strong = eval3(kind, &full);
            let weak = eval3(kind, &weaker);
            if weak.is_known() {
                prop_assert_eq!(weak, strong);
            }
        }
    }
}
