//! Property-style invariants across the workspace.
//!
//! These were originally proptest properties; they are now deterministic
//! sweeps driven by `flh-rng` so the suite runs fully offline with no
//! external dev-dependencies. Each property samples 24 seeded generator
//! configurations (the same case budget the proptest version used), so a
//! failure always reproduces with the printed config.

use flh::core::{apply_style, optimize_fanout, DftStyle, FanoutOptConfig};
use flh::netlist::bench_io::{parse_bench, write_bench};
use flh::netlist::{generate_circuit, CircuitStats, GeneratorConfig};
use flh::sim::value::eval3;
use flh::sim::{Logic, LogicSim};
use flh::tech::{CellLibrary, Technology};
use flh::timing::{analyze, TimingConfig};
use flh_netlist::CellKind;
use flh_rng::Rng;

const CASES: usize = 24;

/// Deterministic stand-in for the old proptest `config_strategy()`:
/// small-but-interesting generator configurations sampled from `rng`.
fn sample_config(rng: &mut Rng) -> GeneratorConfig {
    let pi = rng.gen_range(2usize..8);
    let po = rng.gen_range(1usize..6);
    let ff = rng.gen_range(2usize..12);
    let depth = rng.gen_range(3usize..10);
    let seed = rng.gen_range(0u64..1000);
    let extra = rng.gen_range(20usize..50);
    let flg = ((ff as f64) * 1.8).round() as usize;
    GeneratorConfig {
        name: format!("prop_{seed}"),
        primary_inputs: pi,
        primary_outputs: po,
        flip_flops: ff,
        gates: flg + depth - 1 + extra,
        logic_depth: depth,
        avg_ff_fanout: 2.3,
        unique_flg_ratio: 1.8,
        hot_ff_fanout: None,
        seed,
    }
}

fn for_each_config(property_seed: u64, mut check: impl FnMut(&GeneratorConfig)) {
    let mut rng = Rng::seed_from_u64(property_seed);
    for case in 0..CASES {
        let cfg = sample_config(&mut rng);
        eprintln!("case {case}: {cfg:?}");
        check(&cfg);
    }
}

/// Generated circuits always validate and hit their requested shape.
#[test]
fn generator_meets_spec() {
    for_each_config(0xA110C1, |cfg| {
        let n = generate_circuit(cfg).expect("generates");
        n.validate().expect("valid");
        let stats = CircuitStats::compute(&n).expect("stats");
        assert_eq!(stats.primary_inputs, cfg.primary_inputs);
        assert_eq!(stats.primary_outputs, cfg.primary_outputs);
        assert_eq!(stats.flip_flops, cfg.flip_flops);
        assert_eq!(stats.gates, cfg.gates);
        assert_eq!(stats.logic_depth as usize, cfg.logic_depth);
    });
}

/// `.bench` serialization round-trips the full structure.
#[test]
fn bench_round_trip() {
    for_each_config(0xB43C4, |cfg| {
        let n = generate_circuit(cfg).expect("generates");
        let text = write_bench(&n);
        let m = parse_bench(&text, n.name()).expect("parses");
        let a = CircuitStats::compute(&n).expect("stats");
        let b = CircuitStats::compute(&m).expect("stats");
        assert_eq!(a, b);
        // And a second round-trip is textually stable.
        assert_eq!(text, write_bench(&m));
    });
}

/// Scan + holding transforms never change the sequential function.
#[test]
fn styles_preserve_function() {
    let mut style_rng = Rng::seed_from_u64(0x57113);
    for_each_config(0x57113, |cfg| {
        let style = [
            DftStyle::PlainScan,
            DftStyle::EnhancedScan,
            DftStyle::MuxHold,
        ][style_rng.gen_range(0usize..3)];
        let n = generate_circuit(cfg).expect("generates");
        let d = apply_style(&n, style).expect("applies");
        let mut sim_a = LogicSim::new(&n).expect("sim");
        let mut sim_b = LogicSim::new(&d.netlist).expect("sim");
        for i in 0..n.flip_flops().len() {
            let v = Logic::from_bool(i % 2 == 0);
            sim_a.set_ff_by_index(i, v);
            sim_b.set_ff_by_index(i, v);
        }
        for step in 0..10 {
            let vector: Vec<Logic> = (0..n.inputs().len())
                .map(|i| Logic::from_bool((step + i) % 3 == 0))
                .collect();
            sim_a.apply_vector(&vector);
            sim_b.apply_vector(&vector);
            assert_eq!(sim_a.outputs(), sim_b.outputs());
            assert_eq!(sim_a.ff_state(), sim_b.ff_state());
        }
    });
}

/// Fanout optimization preserves function and never grows the gated set.
#[test]
fn fanout_opt_safety() {
    for_each_config(0xFA4007, |cfg| {
        let n = generate_circuit(cfg).expect("generates");
        let flh = apply_style(&n, DftStyle::Flh).expect("flh");
        let result = optimize_fanout(&flh, &FanoutOptConfig::paper_default()).expect("opt");
        assert!(result.flg_after <= result.flg_before);
        result.netlist.validate().expect("valid");
        let mut sim_a = LogicSim::new(&flh.netlist).expect("sim");
        let mut sim_b = LogicSim::new(&result.netlist).expect("sim");
        for i in 0..n.flip_flops().len() {
            sim_a.set_ff_by_index(i, Logic::Zero);
            sim_b.set_ff_by_index(i, Logic::Zero);
        }
        for step in 0..8 {
            let vector: Vec<Logic> = (0..n.inputs().len())
                .map(|i| Logic::from_bool((step * i) % 2 == 0))
                .collect();
            sim_a.apply_vector(&vector);
            sim_b.apply_vector(&vector);
            assert_eq!(sim_a.outputs(), sim_b.outputs());
        }
    });
}

/// STA: extra fanout load can only increase a driver's arrival time.
#[test]
fn sta_is_monotone_in_load() {
    let lib = CellLibrary::new(Technology::bptm70());
    let tc = TimingConfig::paper_default();
    let build = |loads: usize| {
        let mut n = flh::netlist::Netlist::new("mono");
        let a = n.add_input("a");
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        let s = n.add_cell("s", CellKind::Inv, vec![g]);
        for i in 0..loads {
            n.add_cell(format!("l{i}"), CellKind::Inv, vec![g]);
        }
        n.add_output("y", s);
        n
    };
    let base = build(0);
    let rb = analyze(&base, &lib, &tc, None).expect("sta");
    let sb = base.find("s").expect("cell");
    for extra in 1usize..6 {
        let loaded = build(extra);
        let rl = analyze(&loaded, &lib, &tc, None).expect("sta");
        let sl = loaded.find("s").expect("cell");
        assert!(rl.arrival_ps(sl) > rb.arrival_ps(sb), "extra={extra}");
    }
}

/// Three-valued evaluation agrees with two-valued evaluation on every
/// fully-known input combination, for every library gate kind.
#[test]
fn eval3_matches_eval64_when_known() {
    for bits in 0u16..16 {
        for kind in [
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And3,
            CellKind::Or3,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Aoi21,
            CellKind::Oai21,
            CellKind::Aoi22,
            CellKind::Oai22,
            CellKind::Mux2,
            CellKind::Nand4,
        ] {
            let arity = kind.arity();
            let inputs: Vec<Logic> = (0..arity)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            let bools: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                eval3(kind, &inputs),
                Logic::from_bool(kind.eval_bool(&bools)),
                "{kind:?} bits={bits:04b}"
            );
        }
    }
}

/// Pessimism property: replacing any known input by X never produces a
/// *different* known value — it may only lose information.
#[test]
fn eval3_is_monotone_in_information() {
    for bits in 0u16..16 {
        for drop in 0usize..4 {
            for kind in [
                CellKind::Nand3,
                CellKind::Aoi21,
                CellKind::Mux2,
                CellKind::Xor2,
            ] {
                let arity = kind.arity();
                let drop = drop % arity;
                let full: Vec<Logic> = (0..arity)
                    .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                    .collect();
                let mut weaker = full.clone();
                weaker[drop] = Logic::X;
                let strong = eval3(kind, &full);
                let weak = eval3(kind, &weaker);
                if weak.is_known() {
                    assert_eq!(weak, strong, "{kind:?} bits={bits:04b} drop={drop}");
                }
            }
        }
    }
}
