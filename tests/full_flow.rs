//! Cross-crate integration: generate → serialize → map → DFT → evaluate.

use flh::core::{apply_style, evaluate_all, DftStyle, EvalConfig};
use flh::netlist::bench_io::{parse_bench, write_bench};
use flh::netlist::mapper::map_netlist;
use flh::netlist::{generate_circuit, iscas89_profile, CircuitStats};

fn medium_circuit() -> flh::netlist::Netlist {
    let profile = iscas89_profile("s526").expect("profile exists");
    generate_circuit(&profile.generator_config()).expect("generates")
}

#[test]
fn bench_round_trip_preserves_statistics() {
    let circuit = medium_circuit();
    let text = write_bench(&circuit);
    let reparsed = parse_bench(&text, circuit.name()).expect("parses");
    let a = CircuitStats::compute(&circuit).expect("stats");
    let b = CircuitStats::compute(&reparsed).expect("stats");
    assert_eq!(a.flip_flops, b.flip_flops);
    assert_eq!(a.gates, b.gates);
    assert_eq!(a.logic_depth, b.logic_depth);
    assert_eq!(a.total_ff_fanouts, b.total_ff_fanouts);
    assert_eq!(a.unique_first_level_gates, b.unique_first_level_gates);
}

#[test]
fn mapping_a_generated_circuit_is_safe() {
    // Generated circuits are already library-mapped; the mapper must be a
    // behaviour-preserving no-op-or-improvement on them.
    let circuit = medium_circuit();
    let mapped = map_netlist(&circuit).expect("maps");
    mapped.validate().expect("valid");
    assert!(mapped.gate_count() <= circuit.gate_count());
    assert_eq!(mapped.flip_flops().len(), circuit.flip_flops().len());
}

#[test]
fn every_style_yields_a_valid_netlist_and_sane_overheads() {
    let circuit = medium_circuit();
    let config = EvalConfig {
        vectors: 30,
        ..EvalConfig::paper_default()
    };
    let evals = evaluate_all(&circuit, &config).expect("evaluates");
    assert_eq!(evals.len(), 4);
    for e in &evals {
        assert!(e.area_um2 >= e.base_area_um2 * 0.999, "{}", e.style);
        assert!(e.delay_ps >= e.base_delay_ps * 0.999, "{}", e.style);
        assert!(e.power_uw > 0.0);
    }
    // The paper's three orderings.
    let get = |s: DftStyle| evals.iter().find(|e| e.style == s).expect("present");
    let es = get(DftStyle::EnhancedScan);
    let mx = get(DftStyle::MuxHold);
    let flh = get(DftStyle::Flh);
    assert!(es.area_increase_pct() > flh.area_increase_pct());
    assert!(mx.area_increase_pct() > flh.area_increase_pct());
    assert!(mx.delay_increase_pct() > es.delay_increase_pct());
    assert!(es.delay_increase_pct() > flh.delay_increase_pct());
    assert!(es.power_increase_pct() > flh.power_increase_pct());
}

#[test]
fn flh_gated_set_is_exactly_the_unique_fanout_gates() {
    let circuit = medium_circuit();
    let stats = CircuitStats::compute(&circuit).expect("stats");
    let flh = apply_style(&circuit, DftStyle::Flh).expect("applies");
    assert_eq!(flh.gated.len(), stats.unique_first_level_gates);
    // Each gated cell reads at least one flip-flop, and every flip-flop's
    // combinational readers are all gated.
    let fanouts = flh::netlist::analysis::FanoutMap::compute(&flh.netlist);
    let gated: std::collections::HashSet<_> = flh.gated.iter().copied().collect();
    for &ff in flh.netlist.flip_flops() {
        for &r in fanouts.readers(ff) {
            if flh.netlist.cell(r).kind().is_combinational() {
                assert!(gated.contains(&r), "ungated first-level gate");
            }
        }
    }
}

#[test]
fn enhanced_scan_keeps_the_circuit_function() {
    use flh::sim::{Logic, LogicSim};
    use flh_rng::Rng;

    let circuit = medium_circuit();
    let es = apply_style(&circuit, DftStyle::EnhancedScan).expect("applies");
    let mut rng = Rng::seed_from_u64(77);
    let mut sim_a = LogicSim::new(&circuit).expect("sim");
    let mut sim_b = LogicSim::new(&es.netlist).expect("sim");
    for i in 0..circuit.flip_flops().len() {
        let v = Logic::from_bool(rng.gen());
        sim_a.set_ff_by_index(i, v);
        sim_b.set_ff_by_index(i, v);
    }
    for _ in 0..25 {
        let vec: Vec<Logic> = (0..circuit.inputs().len())
            .map(|_| Logic::from_bool(rng.gen()))
            .collect();
        sim_a.apply_vector(&vec);
        sim_b.apply_vector(&vec);
        assert_eq!(sim_a.outputs(), sim_b.outputs());
        assert_eq!(sim_a.ff_state(), sim_b.ff_state());
    }
}
