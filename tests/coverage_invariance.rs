//! Section IV of the paper as an executable property: FLH insertion does
//! not change fault models, test generation or fault coverage, and test
//! patterns generated for the bare circuit work unchanged on every DFT
//! variant.

use flh::atpg::transition::enumerate_transition_faults;
use flh::atpg::{
    collapse_faults, enumerate_stuck_faults, simulate_transition_patterns, transition_atpg,
    PodemConfig, TestView,
};
use flh::core::{apply_style, DftStyle};
use flh::netlist::{generate_circuit, GeneratorConfig};

fn circuit() -> flh::netlist::Netlist {
    generate_circuit(&GeneratorConfig {
        name: "cov_inv".into(),
        primary_inputs: 6,
        primary_outputs: 5,
        flip_flops: 9,
        gates: 80,
        logic_depth: 7,
        avg_ff_fanout: 2.3,
        unique_flg_ratio: 1.8,
        hot_ff_fanout: None,
        seed: 321,
    })
    .expect("generates")
}

#[test]
fn atpg_results_are_identical_on_base_and_flh_netlists() {
    let base = circuit();
    let flh = apply_style(&base, DftStyle::Flh).expect("flh");
    let run = |n: &flh::netlist::Netlist| {
        let view = TestView::new(n).expect("view");
        let faults = enumerate_transition_faults(n);
        let r = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 7);
        (r.coverage_pct(), r.patterns.len(), r.untestable)
    };
    // The FLH netlist is structurally the scan-converted base netlist:
    // coverage, pattern count and untestables must all match exactly.
    let scan_base = apply_style(&base, DftStyle::PlainScan).expect("scan");
    assert_eq!(run(&scan_base.netlist), run(&flh.netlist));
}

#[test]
fn patterns_generated_on_base_detect_the_same_faults_on_enhanced_scan() {
    let base = circuit();
    let scan_base = apply_style(&base, DftStyle::PlainScan).expect("scan");
    let es = apply_style(&base, DftStyle::EnhancedScan).expect("es");

    let view_base = TestView::new(&scan_base.netlist).expect("view");
    let faults_base = enumerate_transition_faults(&scan_base.netlist);
    let result = transition_atpg(&view_base, &faults_base, &PodemConfig::paper_default(), 7);

    // Replay the same patterns on the enhanced-scan netlist against the
    // corresponding fault sites (same names; hold cells add new sites that
    // are not part of the original universe).
    let view_es = TestView::new(&es.netlist).expect("view");
    let faults_es: Vec<_> = faults_base
        .iter()
        .map(|f| {
            let name = scan_base.netlist.cell(f.site).name();
            let site = es.netlist.find(name).expect("cell survives");
            flh::atpg::TransitionFault { site, ..*f }
        })
        .collect();
    let detected_es = simulate_transition_patterns(&view_es, &faults_es, &result.patterns);
    let es_count = detected_es.iter().filter(|&&d| d).count();
    assert_eq!(
        es_count,
        result.detected_count(),
        "coverage changed across DFT styles for the same test set"
    );
}

#[test]
fn stuck_at_universe_is_stable_under_flh() {
    let base = circuit();
    let scan_base = apply_style(&base, DftStyle::PlainScan).expect("scan");
    let flh = apply_style(&base, DftStyle::Flh).expect("flh");
    let a = enumerate_stuck_faults(&scan_base.netlist);
    let b = enumerate_stuck_faults(&flh.netlist);
    assert_eq!(a.len(), b.len());
    let ca = collapse_faults(&scan_base.netlist, &a);
    let cb = collapse_faults(&flh.netlist, &b);
    assert_eq!(ca.len(), cb.len());
}
