//! The paper's central functional claim, end-to-end: FLH applies arbitrary
//! two-pattern tests *exactly* like enhanced scan — same launch, same
//! capture, same isolation — at a fraction of the hardware.

use flh::core::{apply_style, DftStyle};
use flh::netlist::{generate_circuit, GeneratorConfig};
use flh::sim::{Logic, LogicSim, TwoPatternRunner};
use flh_rng::Rng;

fn circuit() -> flh::netlist::Netlist {
    generate_circuit(&GeneratorConfig {
        name: "tp_eq".into(),
        primary_inputs: 7,
        primary_outputs: 5,
        flip_flops: 11,
        gates: 100,
        logic_depth: 8,
        avg_ff_fanout: 2.3,
        unique_flg_ratio: 1.8,
        hot_ff_fanout: None,
        seed: 2024,
    })
    .expect("generates")
}

#[test]
fn flh_and_enhanced_scan_apply_identical_two_pattern_tests() {
    let base = circuit();
    let es = apply_style(&base, DftStyle::EnhancedScan).expect("es");
    let flh = apply_style(&base, DftStyle::Flh).expect("flh");

    let runner_es = TwoPatternRunner::for_netlist(&es.netlist, es.hold_mechanism());
    let runner_flh = TwoPatternRunner::for_netlist(&flh.netlist, flh.hold_mechanism());

    let mut rng = Rng::seed_from_u64(99);
    let n_pi = base.inputs().len();
    let n_ff = base.flip_flops().len();
    let mut rand_bits =
        |n: usize| -> Vec<Logic> { (0..n).map(|_| Logic::from_bool(rng.gen())).collect() };

    for round in 0..200 {
        let (v1p, v1s, v2p, v2s) = (
            rand_bits(n_pi),
            rand_bits(n_ff),
            rand_bits(n_pi),
            rand_bits(n_ff),
        );
        let mut sim_es = LogicSim::new(&es.netlist).expect("sim");
        let out_es = runner_es.apply(&mut sim_es, &v1p, &v1s, &v2p, &v2s);
        let mut sim_flh = LogicSim::new(&flh.netlist).expect("sim");
        let out_flh = runner_flh.apply(&mut sim_flh, &v1p, &v1s, &v2p, &v2s);

        assert_eq!(out_es.po_response, out_flh.po_response, "round {round}");
        assert_eq!(out_es.captured, out_flh.captured, "round {round}");
        assert_eq!(out_es.comb_toggles_during_shift, 0, "round {round}");
        assert_eq!(out_flh.comb_toggles_during_shift, 0, "round {round}");
    }
}

#[test]
fn plain_scan_cannot_isolate_but_settles_to_the_same_response() {
    let base = circuit();
    let plain = apply_style(&base, DftStyle::PlainScan).expect("plain");
    let flh = apply_style(&base, DftStyle::Flh).expect("flh");
    let runner_plain = TwoPatternRunner::for_netlist(&plain.netlist, plain.hold_mechanism());
    let runner_flh = TwoPatternRunner::for_netlist(&flh.netlist, flh.hold_mechanism());

    let mut rng = Rng::seed_from_u64(5);
    let n_pi = base.inputs().len();
    let n_ff = base.flip_flops().len();
    let mut rand_bits =
        |n: usize| -> Vec<Logic> { (0..n).map(|_| Logic::from_bool(rng.gen())).collect() };
    let mut leaked_any = false;
    for _ in 0..50 {
        let (v1p, v1s, v2p, v2s) = (
            rand_bits(n_pi),
            rand_bits(n_ff),
            rand_bits(n_pi),
            rand_bits(n_ff),
        );
        let mut sim_p = LogicSim::new(&plain.netlist).expect("sim");
        let out_p = runner_plain.apply(&mut sim_p, &v1p, &v1s, &v2p, &v2s);
        let mut sim_f = LogicSim::new(&flh.netlist).expect("sim");
        let out_f = runner_flh.apply(&mut sim_f, &v1p, &v1s, &v2p, &v2s);
        // Identical settled results (holding only affects transient launch
        // behaviour and shift power, not the final logic values).
        assert_eq!(out_p.po_response, out_f.po_response);
        assert_eq!(out_p.captured, out_f.captured);
        leaked_any |= out_p.comb_toggles_during_shift > 0;
    }
    assert!(
        leaked_any,
        "plain scan should leak shift activity into the combinational block"
    );
}

#[test]
fn mux_hold_matches_enhanced_scan() {
    let base = circuit();
    let es = apply_style(&base, DftStyle::EnhancedScan).expect("es");
    let mx = apply_style(&base, DftStyle::MuxHold).expect("mux");
    let runner_es = TwoPatternRunner::for_netlist(&es.netlist, es.hold_mechanism());
    let runner_mx = TwoPatternRunner::for_netlist(&mx.netlist, mx.hold_mechanism());

    let mut rng = Rng::seed_from_u64(13);
    let n_pi = base.inputs().len();
    let n_ff = base.flip_flops().len();
    let mut rand_bits =
        |n: usize| -> Vec<Logic> { (0..n).map(|_| Logic::from_bool(rng.gen())).collect() };
    for _ in 0..100 {
        let (v1p, v1s, v2p, v2s) = (
            rand_bits(n_pi),
            rand_bits(n_ff),
            rand_bits(n_pi),
            rand_bits(n_ff),
        );
        let mut sim_a = LogicSim::new(&es.netlist).expect("sim");
        let a = runner_es.apply(&mut sim_a, &v1p, &v1s, &v2p, &v2s);
        let mut sim_b = LogicSim::new(&mx.netlist).expect("sim");
        let b = runner_mx.apply(&mut sim_b, &v1p, &v1s, &v2p, &v2s);
        assert_eq!(a.po_response, b.po_response);
        assert_eq!(a.captured, b.captured);
        assert_eq!(b.comb_toggles_during_shift, 0);
    }
}
