//! End-to-end smoke tests of the `flh` command-line tool.

use std::process::Command;

fn flh(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flh"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_all_profiles() {
    let (ok, stdout, _) = flh(&["list"]);
    assert!(ok);
    for name in ["s298", "s5378", "s13207"] {
        assert!(stdout.contains(name), "{name} missing");
    }
}

#[test]
fn stats_on_builtin_profile() {
    let (ok, stdout, _) = flh(&["stats", "s344"]);
    assert!(ok);
    assert!(stdout.contains("15 FF"));
    assert!(stdout.contains("unique first-level gates"));
}

#[test]
fn eval_prints_all_styles() {
    let (ok, stdout, _) = flh(&["eval", "s298"]);
    assert!(ok);
    for style in ["plain scan", "enhanced scan", "MUX-based", "FLH"] {
        assert!(stdout.contains(style), "{style} missing");
    }
}

#[test]
fn apply_exports_every_format() {
    let (ok, bench, _) = flh(&["apply", "s298", "flh", "--bench"]);
    assert!(ok);
    assert!(bench.contains("SDFF("));
    let (ok, verilog, stderr) = flh(&["apply", "s298", "flh", "--verilog"]);
    assert!(ok);
    assert!(verilog.contains("module s298"));
    assert!(stderr.contains("supply-gated first-level gates"));
    let (ok, dot, _) = flh(&["apply", "s298", "enhanced", "--dot"]);
    assert!(ok);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("HOLDL"));
}

#[test]
fn atpg_then_fsim_round_trip() {
    let dir = std::env::temp_dir().join(format!("flh_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("patterns.txt");
    let (ok, _, stderr) = flh(&["atpg", "s298", "--out", file.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("coverage"));
    let (ok, stdout, _) = flh(&["fsim", "s298", file.to_str().unwrap()]);
    assert!(ok);
    // The resimulated coverage equals the generated coverage.
    let gen_cov = stderr
        .split('%')
        .next()
        .and_then(|s| s.rsplit(' ').next())
        .and_then(|s| s.parse::<f64>().ok())
        .expect("coverage in atpg output");
    assert!(stdout.contains(&format!("{gen_cov:.2}%")), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_file_input_works() {
    let dir = std::env::temp_dir().join(format!("flh_cli_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("tiny.bench");
    std::fs::write(
        &file,
        "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nf = DFF(g)\ng = NAND(a, b, f)\nq = NOT(f)\n",
    )
    .expect("write bench");
    let (ok, stdout, stderr) = flh(&["stats", file.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("1 FF"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, _, stderr) = flh(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = flh(&["apply", "s298", "warp-drive"]);
    assert!(!ok);
    assert!(stderr.contains("unknown style"));
    let (ok, _, stderr) = flh(&["stats", "/nonexistent/file.bench"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}
