//! End-to-end smoke tests of the `flh` command-line tool.

use std::process::Command;

fn flh(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flh"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_all_profiles() {
    let (ok, stdout, _) = flh(&["list"]);
    assert!(ok);
    for name in ["s298", "s5378", "s13207"] {
        assert!(stdout.contains(name), "{name} missing");
    }
}

#[test]
fn stats_on_builtin_profile() {
    let (ok, stdout, _) = flh(&["stats", "s344"]);
    assert!(ok);
    assert!(stdout.contains("15 FF"));
    assert!(stdout.contains("unique first-level gates"));
}

#[test]
fn eval_prints_all_styles() {
    let (ok, stdout, _) = flh(&["eval", "s298"]);
    assert!(ok);
    for style in ["plain scan", "enhanced scan", "MUX-based", "FLH"] {
        assert!(stdout.contains(style), "{style} missing");
    }
}

#[test]
fn apply_exports_every_format() {
    let (ok, bench, _) = flh(&["apply", "s298", "flh", "--bench"]);
    assert!(ok);
    assert!(bench.contains("SDFF("));
    let (ok, verilog, stderr) = flh(&["apply", "s298", "flh", "--verilog"]);
    assert!(ok);
    assert!(verilog.contains("module s298"));
    assert!(stderr.contains("supply-gated first-level gates"));
    let (ok, dot, _) = flh(&["apply", "s298", "enhanced", "--dot"]);
    assert!(ok);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("HOLDL"));
}

#[test]
fn atpg_then_fsim_round_trip() {
    let dir = std::env::temp_dir().join(format!("flh_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("patterns.txt");
    let (ok, _, stderr) = flh(&["atpg", "s298", "--out", file.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("coverage"));
    let (ok, stdout, _) = flh(&["fsim", "s298", file.to_str().unwrap()]);
    assert!(ok);
    // The resimulated coverage equals the generated coverage.
    let gen_cov = stderr
        .split('%')
        .next()
        .and_then(|s| s.rsplit(' ').next())
        .and_then(|s| s.parse::<f64>().ok())
        .expect("coverage in atpg output");
    assert!(stdout.contains(&format!("{gen_cov:.2}%")), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_file_input_works() {
    let dir = std::env::temp_dir().join(format!("flh_cli_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("tiny.bench");
    std::fs::write(
        &file,
        "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nf = DFF(g)\ng = NAND(a, b, f)\nq = NOT(f)\n",
    )
    .expect("write bench");
    let (ok, stdout, stderr) = flh(&["stats", file.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("1 FF"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, _, stderr) = flh(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = flh(&["apply", "s298", "warp-drive"]);
    assert!(!ok);
    assert!(stderr.contains("unknown style"));
    let (ok, _, stderr) = flh(&["stats", "/nonexistent/file.bench"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}

/// Golden output: the lowered bytecode of the fixed s298 profile. The
/// generator, fusion and regalloc are all deterministic, so the header,
/// opcode histogram and level occupancy are stable byte for byte — any
/// drift here is an unintended lowering change.
#[test]
fn disasm_golden_s298() {
    let (ok, stdout, stderr) = flh(&["disasm", "s298"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.starts_with("; 125 insts, 156 micro-ops fused away, 0 scratch words, 10 batches\n"),
        "header drifted:\n{}",
        stdout.lines().next().unwrap_or("")
    );
    let histogram = "\
opcode histogram (125 instructions):
  Copy             12    9.6%
  Not              10    8.0%
  And               1    0.8%
  Nand             40   32.0%
  Or                5    4.0%
  Nor              21   16.8%
  Xor               7    5.6%
  Xnor              3    2.4%
  Aoi21            12    9.6%
  Aoi22             7    5.6%
  Oai21             4    3.2%
  Oai22             3    2.4%
";
    assert!(stdout.contains(histogram), "histogram drifted:\n{stdout}");
    let occupancy = "\
level occupancy (level: batches / instructions):
  L1       1 batch(es)        29 inst
  L2       1 batch(es)        24 inst
  L3       1 batch(es)        17 inst
  L4       1 batch(es)        14 inst
  L5       1 batch(es)         7 inst
  L6       1 batch(es)        11 inst
  L7       1 batch(es)         6 inst
  L8       1 batch(es)         6 inst
  L9       1 batch(es)         6 inst
  L10      1 batch(es)         5 inst
";
    assert!(stdout.contains(occupancy), "occupancy drifted:\n{stdout}");
}

/// `flh top --script` replays a protocol script in-process and renders one
/// dashboard frame per `stats` response — deterministic (no clock in the
/// script path), so the frames can be asserted exactly.
#[test]
fn top_script_renders_deterministic_dashboard_frames() {
    let dir = std::env::temp_dir().join(format!("flh_cli_top_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let script = dir.join("session.jsonl");
    std::fs::write(
        &script,
        concat!(
            "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":16,\"seed\":3,\
\"styles\":\"arbitrary,broadside\"}\n",
            "{\"op\":\"stats\"}\n",
            "{\"op\":\"wait\"}\n",
            "{\"op\":\"stats\"}\n",
            "{\"op\":\"shutdown\"}\n",
        ),
    )
    .expect("write script");

    let (ok, stdout, stderr) = flh(&["top", "--script", script.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    // Two stats probes -> two frames.
    assert!(stdout.contains("── flh top · poll 1 ──"), "{stdout}");
    assert!(stdout.contains("── flh top · poll 2 ──"), "{stdout}");
    // Frame one: the job is queued behind the closed gate.
    assert!(
        stdout.contains("jobs      submitted 1  completed 0  in-flight 1"),
        "{stdout}"
    );
    // Frame two: retired, with the campaign's work and coverage visible.
    assert!(
        stdout.contains("jobs      submitted 1  completed 1  in-flight 0"),
        "{stdout}"
    );
    assert!(stdout.contains("work      pairs 32"), "{stdout}");
    assert!(stdout.contains("coverage  arbitrary "), "{stdout}");
    assert!(stdout.contains("broadside "), "{stdout}");

    // A script with no stats probes is an error, not an empty dashboard.
    let empty = dir.join("no_stats.jsonl");
    std::fs::write(&empty, "{\"op\":\"status\"}\n").expect("write script");
    let (ok, _, stderr) = flh(&["top", "--script", empty.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("no stats responses"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `flh analyze` smoke + invariants: the verifier is clean on every style
/// row, and `--check-sim` certifies prune consistency on the grep-able line
/// CI gates on.
#[test]
fn analyze_reports_clean_verifier_and_prune_consistency() {
    let (ok, stdout, stderr) = flh(&["analyze", "s344", "--check-sim"]);
    assert!(ok, "{stderr}");
    assert_eq!(
        stdout.matches("clean (").count(),
        5,
        "five style rows, all clean:\n{stdout}"
    );
    assert!(stdout.contains("prune-consistency: OK"), "{stdout}");
}
