//! Cross-abstraction consistency: the keeper semantics the logic simulator
//! assumes ("a supply-gated cell holds its output during sleep") must be
//! exactly what the transistor-level simulation of the Fig. 3 circuit
//! delivers — and, without the keeper, must *fail* within a scan window,
//! which is why the keeper exists at all.

use flh::analog::{
    gated_chain, simulate, steady_state_initial, GatedChainConfig, InputStimulus, TransientConfig,
};
use flh::tech::{FlhConfig, Technology};

#[test]
fn keeper_justifies_the_logic_level_hold_semantics() {
    let tech = Technology::bptm70();
    let config = GatedChainConfig::fig4(60);
    let (circuit, probes) = gated_chain(&tech, &config);
    let init = steady_state_initial(&tech, &probes, &circuit);
    let trace = simulate(&circuit, &TransientConfig::for_window_ns(40.0), &init);
    // The held node stays within noise margins of its logic level for the
    // whole sleep window — the precondition for LogicSim's frozen-output
    // abstraction.
    assert!(trace.min_in_window(probes.out1, 2.0, 40.0) > 0.8 * tech.vdd);
    assert!(trace.max_in_window(probes.out2, 10.0, 40.0) < 0.2 * tech.vdd);
}

#[test]
fn without_keeper_the_hold_fails_inside_a_scan_window() {
    let tech = Technology::bptm70();
    let config = GatedChainConfig::fig2();
    let (circuit, probes) = gated_chain(&tech, &config);
    let init = steady_state_initial(&tech, &probes, &circuit);
    let trace = simulate(&circuit, &TransientConfig::for_window_ns(1000.0), &init);
    // The paper's scan-time argument: 1000 scan cycles at 1 GHz = 1 µs;
    // the unkept node must fall below the 600 mV margin well within it.
    let t_fail = trace
        .first_time_below(probes.out1, 0.6, 7.0)
        .expect("floating node must decay");
    let scan_time_ns = 1000.0 / tech.scan_freq_ghz;
    assert!(
        t_fail - 7.0 < 0.2 * scan_time_ns,
        "decay at {t_fail} ns is not clearly inside the {scan_time_ns} ns scan window"
    );
    // And by the end of the window the downstream logic has flipped —
    // the state was genuinely lost, not just degraded.
    assert!(trace.voltage_at(probes.out2, 900.0) > 0.5 * tech.vdd);
}

#[test]
fn weaker_keepers_still_hold_against_leakage() {
    // The FLH keeper is deliberately narrow; verify a margin of 2x below
    // the default sizing still holds a quiet 1 µs sleep.
    let tech = Technology::bptm70();
    let mut flh = FlhConfig::paper_default();
    flh.keeper_n_mult /= 2.0;
    flh.keeper_p_mult /= 2.0;
    let config = GatedChainConfig {
        with_keeper: true,
        sleep_start_ns: 2.0,
        input: InputStimulus::Step { at_ns: 7.0 },
        aggressor_cap_ff: 0.0,
        flh,
    };
    let (circuit, probes) = gated_chain(&tech, &config);
    let init = steady_state_initial(&tech, &probes, &circuit);
    let trace = simulate(&circuit, &TransientConfig::for_window_ns(1000.0), &init);
    assert!(trace.min_in_window(probes.out1, 2.0, 1000.0) > 0.75 * tech.vdd);
}

#[test]
fn gating_transistor_sizing_tradeoff_is_visible_in_silicon() {
    // Wider gating transistors leak more in sleep (faster decay without a
    // keeper) — the flip side of their lower on-resistance.
    let tech = Technology::bptm70();
    let decay_time = |gating_mult: f64| -> f64 {
        let mut cfg = GatedChainConfig::fig2();
        cfg.flh.gating_n_mult = gating_mult;
        cfg.flh.gating_p_mult = 2.0 * gating_mult;
        let (circuit, probes) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &probes, &circuit);
        let trace = simulate(&circuit, &TransientConfig::for_window_ns(500.0), &init);
        trace
            .first_time_below(probes.out1, 0.6, 7.0)
            .unwrap_or(500.0)
    };
    let narrow = decay_time(1.5);
    let wide = decay_time(6.0);
    assert!(
        wide < narrow,
        "wider gating ({wide} ns) should decay faster than narrow ({narrow} ns)"
    );
}
