//! # flh — First Level Hold delay-test DFT
//!
//! Facade crate for the reproduction of *"A Novel Low-overhead Delay Testing
//! Technique for Arbitrary Two-Pattern Test Application"* (Bhunia, Mahmoodi,
//! Raychowdhury, Roy — DATE 2005).
//!
//! The paper's contribution — holding the combinational state via supply
//! gating of the first level of logic instead of an enhanced-scan hold
//! latch — lives in [`core`]; the surrounding EDA substrates each have their
//! own crate, re-exported here under a stable path:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `flh-netlist` | gate-level netlist, `.bench` I/O, generator, mapper |
//! | [`exec`] | `flh-exec` | deterministic scoped thread pool, campaign fan-out (`FLH_THREADS`) |
//! | [`tech`] | `flh-tech` | 70 nm device model and transistor-level cell library |
//! | [`sim`] | `flh-sim` | event-driven logic simulation, scan machinery |
//! | [`analog`] | `flh-analog` | transient circuit simulation (Fig. 2 / Fig. 4) |
//! | [`timing`] | `flh-timing` | static timing analysis |
//! | [`power`] | `flh-power` | dynamic + leakage power estimation |
//! | [`core`] | `flh-core` | scan insertion, DFT styles, FLH transform, fanout optimization |
//! | [`atpg`] | `flh-atpg` | fault models, PODEM, transition ATPG, fault simulation |
//! | [`bist`] | `flh-bist` | LFSR/MISR test-per-scan BIST with FLH holding |
//! | [`lint`] | `flh-lint` | static verification: `FLH0xx` diagnostics over netlists and the FLH transform |
//! | [`obs`] | `flh-obs` | deterministic counters, span timing, JSON/Chrome-trace export (`FLH_TRACE`) |
//! | [`serve`] | `flh-serve` | session-oriented `JobEngine`, compiled-circuit cache, `flh serve` protocol |
//!
//! # Quickstart
//!
//! ```
//! use flh::netlist::{iscas89_profile, generate_circuit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = iscas89_profile("s298").ok_or("unknown circuit")?;
//! let circuit = generate_circuit(&profile.generator_config())?;
//! assert_eq!(circuit.flip_flops().len(), 14);
//! # Ok(())
//! # }
//! ```

pub use flh_analog as analog;
pub use flh_atpg as atpg;
pub use flh_bist as bist;
pub use flh_core as core;
pub use flh_exec as exec;
pub use flh_lint as lint;
pub use flh_netlist as netlist;
pub use flh_obs as obs;
pub use flh_power as power;
pub use flh_rng as rng;
pub use flh_serve as serve;
pub use flh_sim as sim;
pub use flh_tech as tech;
pub use flh_timing as timing;
