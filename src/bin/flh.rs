//! `flh` — command-line front end to the workspace.
//!
//! ```text
//! flh stats   <circuit>                      structural statistics
//! flh eval    <circuit>                      per-style area/delay/power table
//! flh apply   <circuit> <style> [--verilog|--dot|--bench]
//!                                            DFT transform + export to stdout
//! flh atpg    <circuit> [--out FILE]         transition ATPG, pattern file
//! flh fsim    <circuit> <pattern-file>       coverage of a pattern file
//! flh analyze <circuit> [--check-sim]        bytecode verifier + static
//!                                            testability report per style
//! flh campaign <circuit> [--pairs N] [--seed S] [--styles LIST] [--dft STYLE]
//!                                            random transition campaign,
//!                                            one row per application style
//! flh serve   [--queue N] [--cache N] [--socket PATH] [--timings]
//!                                            persistent campaign service
//!                                            (line-delimited JSON protocol)
//! flh top     <socket> [--interval-ms N] [--polls N]
//! flh top     --script FILE                  live telemetry dashboard over
//!                                            the serve `stats` verb
//! flh list                                   known circuit profiles
//! ```
//!
//! `<circuit>` is either a builtin ISCAS89 profile name (`s298` … `s13207`)
//! or a path to an ISCAS89 `.bench` file. `<style>` is one of `plain`,
//! `enhanced`, `mux`, `flh`.
//!
//! `campaign` and `serve` both run on the shared `flh-serve` `JobEngine`:
//! circuits are resolved through one `CircuitSource` keyer and compiled
//! circuits are cached content-addressed, so a serve session re-running a
//! circuit pays neither parse nor compile. `--styles` takes `all` or a
//! comma-separated subset of `arbitrary`, `broadside`, `skewed`; `--dft`
//! applies a DFT transform before the campaign.
//!
//! Every subcommand additionally accepts the global flags
//! `--metrics-json PATH` (full flh-obs report: deterministic counters plus
//! the nondeterministic timing section) and `--metrics-det-json PATH`
//! (deterministic section only — byte-identical at any `FLH_THREADS`).
//! Setting `FLH_TRACE=<path>` writes a Chrome trace-event file of the
//! recorded spans.

use std::process::ExitCode;

use flh::atpg::transition::{enumerate_transition_faults, TransitionPattern};
use flh::atpg::{
    enumerate_stuck_faults, parse_patterns, simulate_transition_patterns, stuck_coverage,
    transition_atpg, write_patterns, PodemConfig, StaticFilter, TestView,
};
use flh::core::{apply_style, evaluate_all, DftStyle, EvalConfig};
use flh::exec::ThreadPool;
use flh::netlist::bench_io::{parse_bench, write_bench};
use flh::netlist::mapper::map_netlist;
use flh::netlist::{dot, generate_circuit, iscas89_profile, iscas89_profiles, verilog};
use flh::netlist::{CircuitStats, CompiledCircuit, Netlist, Program};
use flh::obs;
use flh::serve::{
    parse_application_styles, parse_dft_style, parse_json, serve_lines, serve_unix_socket,
    BatchPayload, CircuitSource, JobEngine, JobEvent, JobId, JobSpec, Json, ServeConfig,
    DEFAULT_CACHE_CAPACITY,
};

use flh::atpg::ApplicationStyle;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  flh stats  <circuit>\n  flh eval   <circuit>\n  flh apply  <circuit> <plain|enhanced|mux|flh> [--verilog|--dot|--bench]\n  flh atpg   <circuit> [--out FILE]\n  flh fsim   <circuit> <pattern-file>\n  flh disasm <circuit> [--dft STYLE]\n  flh analyze <circuit> [--check-sim]\n  flh campaign <circuit> [--pairs N] [--seed S] [--styles all|LIST] [--dft STYLE]\n  flh serve  [--queue N] [--cache N] [--socket PATH] [--timings]\n  flh top    <socket> [--interval-ms N] [--polls N]\n  flh top    --script FILE\n  flh list\n\nglobal flags: --metrics-json PATH, --metrics-det-json PATH\n(FLH_TRACE=<path> writes a Chrome trace-event file)\n\n<circuit> = builtin profile name (see `flh list`) or a .bench file path\ncampaign --styles = all or a comma list of arbitrary, broadside, skewed\ndisasm prints the lowered fused-opcode bytecode the simulators execute\nanalyze runs the bytecode verifier + static testability analysis per style;\n  --check-sim cross-checks the static classifier against fault simulation\nserve --timings adds wall-clock pairs/s + ETA to progress events\ntop polls a serve socket's stats verb (or replays a script) and renders a\n  plain-stdout dashboard: ledger, queue, cache, throughput, coverage"
    );
    ExitCode::FAILURE
}

fn load_circuit(spec: &str) -> Result<Netlist, String> {
    if let Some(profile) = iscas89_profile(spec) {
        return generate_circuit(&profile.generator_config())
            .map_err(|e| format!("generating {spec}: {e}"));
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("{spec}: {e} (and not a builtin profile)"))?;
    let name = std::path::Path::new(spec)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    let parsed = parse_bench(&text, name).map_err(|e| format!("{spec}: {e}"))?;
    map_netlist(&parsed).map_err(|e| format!("{spec}: mapping failed: {e}"))
}

fn parse_style(s: &str) -> Option<DftStyle> {
    parse_dft_style(s)
}

fn cmd_stats(circuit: &Netlist) -> Result<(), String> {
    let stats = CircuitStats::compute(circuit).map_err(|e| e.to_string())?;
    println!("{circuit}");
    println!("logic depth:              {}", stats.logic_depth);
    println!("FF fanout pins:           {}", stats.total_ff_fanouts);
    println!(
        "unique first-level gates: {}",
        stats.unique_first_level_gates
    );
    println!("avg FF fanout:            {:.2}", stats.avg_ff_fanout());
    println!(
        "unique/FF ratio:          {:.2}",
        stats.unique_fanout_ratio()
    );
    let mut kinds: Vec<(&String, &usize)> = stats.kind_histogram.iter().collect();
    kinds.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("gate mix:");
    for (kind, count) in kinds {
        println!("  {kind:<8} {count}");
    }
    Ok(())
}

fn cmd_eval(circuit: &Netlist) -> Result<(), String> {
    let evals = evaluate_all(circuit, &EvalConfig::paper_default()).map_err(|e| e.to_string())?;
    println!(
        "{:>14} | {:>12} {:>9} | {:>10} {:>9} | {:>11} {:>9}",
        "style", "area (um2)", "area %", "delay(ps)", "delay %", "power (uW)", "power %"
    );
    for e in &evals {
        println!(
            "{:>14} | {:>12.2} {:>9.2} | {:>10.0} {:>9.2} | {:>11.2} {:>9.2}",
            e.style.label(),
            e.area_um2,
            e.area_increase_pct(),
            e.delay_ps,
            e.delay_increase_pct(),
            e.power_uw,
            e.power_increase_pct()
        );
    }
    Ok(())
}

fn cmd_apply(circuit: &Netlist, style: DftStyle, format: &str) -> Result<(), String> {
    let dft = apply_style(circuit, style).map_err(|e| e.to_string())?;
    match format {
        "--verilog" => print!("{}", verilog::write_verilog(&dft.netlist)),
        "--dot" => print!(
            "{}",
            dot::to_dot(
                &dft.netlist,
                &dot::DotOptions {
                    highlight: dft.gated.clone(),
                    left_to_right: true,
                },
            )
        ),
        "--bench" => print!("{}", write_bench(&dft.netlist)),
        other => return Err(format!("unknown format {other:?}")),
    }
    if style == DftStyle::Flh {
        eprintln!("// {} supply-gated first-level gates", dft.gated.len());
    }
    Ok(())
}

fn cmd_atpg(circuit: &Netlist, out: Option<&str>) -> Result<(), String> {
    let dft = apply_style(circuit, DftStyle::Flh).map_err(|e| e.to_string())?;
    let view = TestView::new(&dft.netlist).map_err(|e| e.to_string())?;
    let faults = enumerate_transition_faults(&dft.netlist);
    let result = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 0xf1);
    eprintln!(
        "{} transition faults: {:.2}% coverage, {:.2}% efficiency, {} pattern pairs",
        faults.len(),
        result.coverage_pct(),
        result.efficiency_pct(),
        result.patterns.len()
    );
    let text = write_patterns(&result.patterns, view.primary_input_count());
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_fsim(circuit: &Netlist, pattern_file: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(pattern_file).map_err(|e| format!("{pattern_file}: {e}"))?;
    let patterns = parse_patterns(&text).map_err(|e| e.to_string())?;
    let dft = apply_style(circuit, DftStyle::Flh).map_err(|e| e.to_string())?;
    let view = TestView::new(&dft.netlist).map_err(|e| e.to_string())?;
    if let Some(p) = patterns.first() {
        if p.v1.len() != view.assignable().len() {
            return Err(format!(
                "pattern width {} does not match circuit ({} PI + {} FF)",
                p.v1.len(),
                view.primary_input_count(),
                view.assignable().len() - view.primary_input_count()
            ));
        }
    }
    let faults = enumerate_transition_faults(&dft.netlist);
    let detected = simulate_transition_patterns(&view, &faults, &patterns);
    let hits = detected.iter().filter(|&&d| d).count();
    println!(
        "{} pattern pairs detect {}/{} transition faults ({:.2}%)",
        patterns.len(),
        hits,
        faults.len(),
        100.0 * hits as f64 / faults.len().max(1) as f64
    );
    Ok(())
}

/// Prints the lowered bytecode of a circuit (optionally after DFT styling):
/// per-level batches, fused opcodes, named cell slots, scratch registers
/// and fusion provenance — exactly the program every simulator executes.
fn cmd_disasm(circuit: &Netlist, dft: Option<DftStyle>) -> Result<(), String> {
    let styled;
    let netlist = match dft {
        None => circuit,
        Some(style) => {
            styled = apply_style(circuit, style)
                .map_err(|e| e.to_string())?
                .netlist;
            &styled
        }
    };
    let compiled = CompiledCircuit::compile(netlist).map_err(|e| e.to_string())?;
    let program = Program::lower(&compiled);
    print!(
        "{}",
        program.disasm_with(|slot| netlist.cell(compiled.cell_id(slot)).name().to_string())
    );
    let total = program.inst_count().max(1);
    println!(
        "\nopcode histogram ({} instructions):",
        program.inst_count()
    );
    for (op, count) in program.opcode_histogram() {
        println!(
            "  {:<10} {:>8}  {:>5.1}%",
            format!("{op:?}"),
            count,
            100.0 * count as f64 / total as f64
        );
    }
    println!("\nlevel occupancy (level: batches / instructions):");
    for (level, batches, insts) in program.level_occupancy() {
        println!("  L{level:<4} {batches:>4} batch(es)  {insts:>8} inst");
    }
    Ok(())
}

/// Static-analysis report over the compiled bytecode: per DFT style, the
/// verifier verdict, constant nets, dead instructions and the statically
/// untestable share of the fault universe. With `--check-sim`, random
/// stuck-at and transition fault simulation cross-checks the classifier:
/// a statically untestable fault that simulation detects is a soundness
/// bug, reported as `prune-consistency: FAIL`.
fn cmd_analyze(circuit: &Netlist, check_sim: bool) -> Result<(), String> {
    use flh::netlist::static_analysis::{analyze, verify_program};
    let _span = obs::span("flh.analyze");
    println!("{circuit}: bytecode static analysis");
    println!(
        "{:>14} | {:>6} | {:>16} | {:>6} | {:>5} | {:>13} | {:>13}",
        "style", "insts", "verifier", "const", "dead", "untest. stuck", "untest. trans"
    );
    let styles = [
        None,
        Some(DftStyle::PlainScan),
        Some(DftStyle::EnhancedScan),
        Some(DftStyle::MuxHold),
        Some(DftStyle::Flh),
    ];
    let mut verifier_violations = 0usize;
    for style in styles {
        let styled;
        let netlist = match style {
            None => circuit,
            Some(s) => {
                styled = apply_style(circuit, s).map_err(|e| e.to_string())?.netlist;
                &styled
            }
        };
        let compiled = CompiledCircuit::compile(netlist).map_err(|e| e.to_string())?;
        let program = Program::lower(&compiled);
        let verify = verify_program(&compiled, &program);
        verifier_violations += verify.violations.len();
        let analysis = analyze(&compiled, &program);
        let constant_nets = (0..compiled.cell_count() as u32)
            .filter(|&c| {
                let kind = netlist.cell(compiled.cell_id(c)).kind();
                kind.is_combinational()
                    && !matches!(
                        kind,
                        flh::netlist::CellKind::Const0 | flh::netlist::CellKind::Const1
                    )
                    && analysis.constants[c as usize].is_some()
            })
            .count();
        let view = TestView::new(netlist).map_err(|e| e.to_string())?;
        let filter = StaticFilter::from_view(&view);
        let stuck = enumerate_stuck_faults(netlist);
        let stuck_untestable = stuck.iter().filter(|f| filter.stuck_untestable(f)).count();
        let trans = enumerate_transition_faults(netlist);
        let trans_untestable = trans
            .iter()
            .filter(|f| filter.transition_untestable(f))
            .count();
        let verdict = if verify.is_clean() {
            format!("clean ({} chk)", verify.checks)
        } else {
            format!("{} VIOLATIONS", verify.violations.len())
        };
        println!(
            "{:>14} | {:>6} | {:>16} | {:>6} | {:>5} | {:>6}/{:<6} | {:>6}/{:<6}",
            style.map_or("bare", DftStyle::label),
            program.inst_count(),
            verdict,
            constant_nets,
            analysis.dead.dead.len(),
            stuck_untestable,
            stuck.len(),
            trans_untestable,
            trans.len()
        );
    }
    if verifier_violations > 0 {
        return Err(format!(
            "bytecode verifier found {verifier_violations} violation(s)"
        ));
    }
    if check_sim {
        check_prune_consistency(circuit)?;
    }
    Ok(())
}

/// The soundness cross-check behind `flh analyze --check-sim`: no fault the
/// static filter prunes may ever be detected by fault simulation.
fn check_prune_consistency(circuit: &Netlist) -> Result<(), String> {
    use flh::rng::Rng;
    const PATTERNS: usize = 256;
    let view = TestView::new(circuit).map_err(|e| e.to_string())?;
    let filter = StaticFilter::from_view(&view);
    let width = view.assignable().len();
    let mut rng = Rng::seed_from_u64(0xF1A7);
    let random_vec =
        |rng: &mut Rng| -> Vec<bool> { (0..width).map(|_| rng.gen::<bool>()).collect() };

    let stuck = enumerate_stuck_faults(circuit);
    let patterns: Vec<Vec<bool>> = (0..PATTERNS).map(|_| random_vec(&mut rng)).collect();
    let detected = stuck_coverage(&view, &stuck, &patterns);
    let stuck_bad = stuck
        .iter()
        .zip(&detected)
        .filter(|(f, &d)| d && filter.stuck_untestable(f))
        .count();

    let trans = enumerate_transition_faults(circuit);
    let pairs: Vec<TransitionPattern> = (0..PATTERNS)
        .map(|_| TransitionPattern {
            v1: random_vec(&mut rng),
            v2: random_vec(&mut rng),
        })
        .collect();
    let tdetected = simulate_transition_patterns(&view, &trans, &pairs);
    let trans_bad = trans
        .iter()
        .zip(&tdetected)
        .filter(|(f, &d)| d && filter.transition_untestable(f))
        .count();

    println!(
        "check-sim: {PATTERNS} random patterns, {} stuck + {} transition faults",
        stuck.len(),
        trans.len()
    );
    if stuck_bad == 0 && trans_bad == 0 {
        println!("prune-consistency: OK");
        Ok(())
    } else {
        println!("prune-consistency: FAIL ({stuck_bad} stuck, {trans_bad} transition)");
        Err(format!(
            "static filter pruned {} detectable fault(s)",
            stuck_bad + trans_bad
        ))
    }
}

fn cmd_campaign(
    spec: &str,
    styles: Vec<ApplicationStyle>,
    pairs: usize,
    seed: u64,
    dft: Option<DftStyle>,
) -> Result<(), String> {
    let _span = obs::span("flh.campaign");
    let engine = JobEngine::from_env();
    let width = engine.pool().size();
    let job = JobSpec::campaign(CircuitSource::named(spec)?)
        .with_styles(styles)
        .with_pairs(pairs)
        .with_seed(seed)
        .with_dft(dft);
    engine
        .run(JobId(1), &job, &mut |event| match event {
            JobEvent::Started { circuit, .. } => {
                println!(
                    "{circuit}: random transition campaign, {pairs} pairs, seed {seed}, \
pool width {width}"
                );
                println!(
                    "{:>22} | {:>7} | {:>8} | {:>10}",
                    "application style", "faults", "detected", "coverage %"
                );
            }
            JobEvent::Batch {
                payload: BatchPayload::Campaign(r),
                ..
            } => {
                println!(
                    "{:>22} | {:>7} | {:>8} | {:>10.2}",
                    r.style.to_string(),
                    r.total_faults,
                    r.detected,
                    r.coverage_pct()
                );
            }
            _ => {}
        })
        .map(|_| ())
}

fn cmd_serve(
    queue_capacity: usize,
    cache_capacity: usize,
    socket: Option<&str>,
    timings: bool,
) -> Result<(), String> {
    // Always record: every `done` event then carries the job's own
    // deterministic metrics delta.
    obs::install(obs::trace_path_from_env().is_some());
    let engine =
        Arc::new(JobEngine::new(ThreadPool::from_env(), cache_capacity).with_timings(timings));
    let config = ServeConfig { queue_capacity };
    match socket {
        Some(path) => serve_unix_socket(std::path::Path::new(path), engine, config)
            .map_err(|e| format!("{path}: {e}")),
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout().lock();
            serve_lines(stdin.lock(), &mut stdout, engine, config)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    }
}

/// One `stats` response reduced to what the dashboard renders.
struct TopSample {
    submitted: u64,
    completed: u64,
    rejected: u64,
    cancelled: u64,
    in_flight: u64,
    hits: u64,
    misses: u64,
    /// `serve.campaign.pairs` named counter (0 when no recorder).
    pairs: u64,
    /// `fsim.transition.detections` counter (0 when no recorder).
    detections: u64,
    /// Deterministic gauges, as published.
    gauges: Vec<(String, i64)>,
    /// Latest coverage per style from the `serve.coverage.*` series, in
    /// basis points.
    coverage: Vec<(String, i64)>,
}

fn top_num(map: &std::collections::BTreeMap<String, Json>, key: &str) -> u64 {
    match map.get(key) {
        Some(Json::Number(n)) if *n >= 0.0 => *n as u64,
        _ => 0,
    }
}

/// Parses a transcript line into a sample if it is a `stats` response.
fn parse_stats_sample(line: &str) -> Option<TopSample> {
    let value = parse_json(line.trim()).ok()?;
    let map = value.as_object()?;
    if map.get("event").and_then(Json::as_str) != Some("stats") {
        return None;
    }
    let cache = map.get("cache").and_then(Json::as_object);
    let mut sample = TopSample {
        submitted: top_num(map, "submitted"),
        completed: top_num(map, "completed"),
        rejected: top_num(map, "rejected"),
        cancelled: top_num(map, "cancelled"),
        in_flight: top_num(map, "in_flight"),
        hits: cache.map_or(0, |c| top_num(c, "hits")),
        misses: cache.map_or(0, |c| top_num(c, "misses")),
        pairs: 0,
        detections: 0,
        gauges: Vec::new(),
        coverage: Vec::new(),
    };
    if let Some(metrics) = map.get("metrics").and_then(Json::as_object) {
        if let Some(counters) = metrics.get("counters").and_then(Json::as_object) {
            sample.detections = top_num(counters, "fsim.transition.detections");
        }
        if let Some(named) = metrics.get("named_counters").and_then(Json::as_object) {
            sample.pairs = top_num(named, "serve.campaign.pairs");
        }
        if let Some(gauges) = metrics.get("gauges").and_then(Json::as_object) {
            for (name, v) in gauges {
                if let Json::Number(n) = v {
                    sample.gauges.push((name.clone(), *n as i64));
                }
            }
        }
        if let Some(Json::Array(series)) = metrics.get("series") {
            for s in series {
                let Some(s) = s.as_object() else { continue };
                let Some(name) = s.get("name").and_then(Json::as_str) else {
                    continue;
                };
                let Some(style) = name.strip_prefix("serve.coverage.") else {
                    continue;
                };
                if let Some(Json::Array(points)) = s.get("points") {
                    if let Some(Json::Array(last)) = points.last() {
                        if let Some(Json::Number(v)) = last.get(1) {
                            sample.coverage.push((style.to_string(), *v as i64));
                        }
                    }
                }
            }
        }
    }
    Some(sample)
}

/// Renders one dashboard frame. `dt_s` (socket mode: wall seconds since
/// the previous poll) enables the client-side throughput/ETA line — rates
/// are always computed here, never taken from the wire, so the default
/// serve transcript stays deterministic.
fn render_top_frame(
    poll: usize,
    sample: &TopSample,
    prev: Option<&TopSample>,
    dt_s: Option<f64>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "── flh top · poll {poll} ──");
    let _ = writeln!(
        out,
        "jobs      submitted {}  completed {}  in-flight {}  rejected {}  cancelled {}",
        sample.submitted, sample.completed, sample.in_flight, sample.rejected, sample.cancelled
    );
    let lookups = sample.hits + sample.misses;
    let ratio = if lookups == 0 {
        0.0
    } else {
        100.0 * sample.hits as f64 / lookups as f64
    };
    let _ = writeln!(
        out,
        "cache     hits {}  misses {}  hit-ratio {ratio:.1}%",
        sample.hits, sample.misses
    );
    let gauge = |name: &str| {
        sample
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let depth = gauge("serve.queue.depth").unwrap_or(sample.in_flight as i64);
    let peak = gauge("serve.queue.depth_peak").unwrap_or(depth);
    let _ = writeln!(out, "queue     depth {depth}  peak {peak}");
    let mut work = format!(
        "work      pairs {}  detections {}",
        sample.pairs, sample.detections
    );
    if let Some(prev) = prev {
        let dp = sample.pairs.saturating_sub(prev.pairs);
        let _ = write!(work, "  (+{dp} pairs");
        if let Some(dt) = dt_s {
            if dt > 0.0 {
                let _ = write!(work, ", {:.1} pairs/s", dp as f64 / dt);
                let dj = sample.completed.saturating_sub(prev.completed);
                let jobs_per_s = dj as f64 / dt;
                if sample.in_flight > 0 && jobs_per_s > 0.0 {
                    let _ = write!(work, ", eta {:.1}s", sample.in_flight as f64 / jobs_per_s);
                }
            }
        }
        work.push(')');
    }
    let _ = writeln!(out, "{work}");
    if !sample.coverage.is_empty() {
        let mut line = String::from("coverage ");
        for (style, bp) in &sample.coverage {
            let _ = write!(line, " {style} {:.2}%", *bp as f64 / 100.0);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// `flh top --script FILE`: replays a protocol script through an
/// in-process engine and renders one frame per `stats` response — the
/// deterministic, socket-free way to exercise the dashboard (and what the
/// CLI test drives).
fn cmd_top_script(path: &str) -> Result<(), String> {
    obs::install(false);
    let script = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let engine = Arc::new(JobEngine::from_env());
    let mut transcript = Vec::new();
    serve_lines(
        script.as_bytes(),
        &mut transcript,
        engine,
        ServeConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let transcript = String::from_utf8_lossy(&transcript);
    let mut prev: Option<TopSample> = None;
    let mut polls = 0usize;
    for line in transcript.lines() {
        if let Some(sample) = parse_stats_sample(line) {
            polls += 1;
            print!("{}", render_top_frame(polls, &sample, prev.as_ref(), None));
            prev = Some(sample);
        }
    }
    if polls == 0 {
        return Err(format!(
            "{path}: script produced no stats responses (add {:?} lines)",
            "{\"op\":\"stats\"}"
        ));
    }
    Ok(())
}

/// `flh top <socket>`: polls a running `flh serve --socket` instance with
/// the `stats` verb and renders a frame per poll. `polls == 0` polls
/// until the server goes away.
fn cmd_top_socket(path: &str, interval_ms: u64, polls: usize) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let stream =
        std::os::unix::net::UnixStream::connect(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    // Nothing here feeds any deterministic document — the wire carries no
    // time-ok: clock either way; dashboard-side rate computation only.
    let mut prev: Option<(TopSample, std::time::Instant)> = None;
    let mut poll = 0usize;
    loop {
        poll += 1;
        writer
            .write_all(b"{\"op\":\"stats\"}\n")
            .map_err(|e| format!("{path}: {e}"))?;
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("{path}: {e}"))?;
        if n == 0 {
            return Err(format!("{path}: server closed the connection"));
        }
        // time-ok: see above — poll pacing and client-side rates only.
        let now = std::time::Instant::now();
        match parse_stats_sample(&line) {
            Some(sample) => {
                let (prev_sample, dt) = match &prev {
                    Some((p, at)) => (Some(p), Some(now.duration_since(*at).as_secs_f64())),
                    None => (None, None),
                };
                print!("{}", render_top_frame(poll, &sample, prev_sample, dt));
                prev = Some((sample, now));
            }
            None => print!("{line}"),
        }
        if polls != 0 && poll >= polls {
            return Ok(());
        }
        // time-ok: poll cadence.
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Removes `flag VALUE` from `args` if present and returns the value.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(pos) if pos + 1 < args.len() => {
            let value = args.remove(pos + 1);
            args.remove(pos);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} expects a value")),
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global observability flags, valid on every subcommand.
    let metrics_json = take_flag_value(&mut args, "--metrics-json")?;
    let metrics_det_json = take_flag_value(&mut args, "--metrics-det-json")?;
    let trace = obs::trace_path_from_env();
    if metrics_json.is_some() || metrics_det_json.is_some() || trace.is_some() {
        obs::install(trace.is_some());
    }
    dispatch(&args)?;
    if metrics_json.is_some() || metrics_det_json.is_some() {
        let snap = obs::snapshot();
        if let Some(path) = &metrics_json {
            std::fs::write(path, obs::full_json(&snap)).map_err(|e| format!("{path}: {e}"))?;
        }
        if let Some(path) = &metrics_det_json {
            std::fs::write(path, obs::det_document(&snap)).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    if let Some(path) = &trace {
        obs::write_trace(path).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for p in iscas89_profiles() {
                println!(
                    "{:<8} {:>4} PI {:>4} PO {:>4} FF {:>6} gates  depth {}",
                    p.name,
                    p.primary_inputs,
                    p.primary_outputs,
                    p.flip_flops,
                    p.gates,
                    p.logic_depth
                );
            }
            Ok(())
        }
        Some("stats") if args.len() == 2 => cmd_stats(&load_circuit(&args[1])?),
        Some("eval") if args.len() == 2 => cmd_eval(&load_circuit(&args[1])?),
        Some("apply") if args.len() >= 3 => {
            let style =
                parse_style(&args[2]).ok_or_else(|| format!("unknown style {:?}", args[2]))?;
            let format = args.get(3).map(String::as_str).unwrap_or("--bench");
            cmd_apply(&load_circuit(&args[1])?, style, format)
        }
        Some("atpg") if args.len() >= 2 => {
            let out = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--out"), Some(path)) => Some(path.as_str()),
                (None, _) => None,
                _ => return Err("atpg takes an optional `--out FILE`".into()),
            };
            cmd_atpg(&load_circuit(&args[1])?, out)
        }
        Some("fsim") if args.len() == 3 => cmd_fsim(&load_circuit(&args[1])?, &args[2]),
        Some("analyze") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[2..].to_vec();
            let check_sim = match rest.iter().position(|a| a == "--check-sim") {
                Some(pos) => {
                    rest.remove(pos);
                    true
                }
                None => false,
            };
            if let Some(extra) = rest.first() {
                return Err(format!("analyze: unexpected argument {extra:?}"));
            }
            cmd_analyze(&load_circuit(&args[1])?, check_sim)
        }
        Some("disasm") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[2..].to_vec();
            let dft = match take_flag_value(&mut rest, "--dft")? {
                Some(v) => {
                    Some(parse_style(&v).ok_or_else(|| format!("--dft: unknown style {v:?}"))?)
                }
                None => None,
            };
            if let Some(extra) = rest.first() {
                return Err(format!("disasm: unexpected argument {extra:?}"));
            }
            cmd_disasm(&load_circuit(&args[1])?, dft)
        }
        Some("campaign") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[2..].to_vec();
            let pairs = match take_flag_value(&mut rest, "--pairs")? {
                Some(v) => v.parse().map_err(|e| format!("--pairs: {e}"))?,
                None => 256,
            };
            let seed = match take_flag_value(&mut rest, "--seed")? {
                Some(v) => v.parse().map_err(|e| format!("--seed: {e}"))?,
                None => 7,
            };
            let styles = match take_flag_value(&mut rest, "--styles")? {
                Some(v) => parse_application_styles(&v).map_err(|e| format!("--styles: {e}"))?,
                None => flh::serve::ALL_APPLICATION_STYLES.to_vec(),
            };
            let dft = match take_flag_value(&mut rest, "--dft")? {
                Some(v) => {
                    Some(parse_style(&v).ok_or_else(|| format!("--dft: unknown style {v:?}"))?)
                }
                None => None,
            };
            if let Some(extra) = rest.first() {
                return Err(format!("campaign: unexpected argument {extra:?}"));
            }
            cmd_campaign(&args[1], styles, pairs, seed, dft)
        }
        Some("serve") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let queue = match take_flag_value(&mut rest, "--queue")? {
                Some(v) => v.parse().map_err(|e| format!("--queue: {e}"))?,
                None => ServeConfig::default().queue_capacity,
            };
            let cache = match take_flag_value(&mut rest, "--cache")? {
                Some(v) => v.parse().map_err(|e| format!("--cache: {e}"))?,
                None => DEFAULT_CACHE_CAPACITY,
            };
            let socket = take_flag_value(&mut rest, "--socket")?;
            let timings = match rest.iter().position(|a| a == "--timings") {
                Some(pos) => {
                    rest.remove(pos);
                    true
                }
                None => false,
            };
            if let Some(extra) = rest.first() {
                return Err(format!("serve: unexpected argument {extra:?}"));
            }
            cmd_serve(queue, cache, socket.as_deref(), timings)
        }
        Some("top") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let script = take_flag_value(&mut rest, "--script")?;
            let interval = match take_flag_value(&mut rest, "--interval-ms")? {
                Some(v) => v.parse().map_err(|e| format!("--interval-ms: {e}"))?,
                None => 1000,
            };
            let polls = match take_flag_value(&mut rest, "--polls")? {
                Some(v) => v.parse().map_err(|e| format!("--polls: {e}"))?,
                None => 0,
            };
            match script {
                Some(path) => {
                    if let Some(extra) = rest.first() {
                        return Err(format!("top: unexpected argument {extra:?}"));
                    }
                    cmd_top_script(&path)
                }
                None => {
                    let [socket] = rest.as_slice() else {
                        return Err("top expects a socket path or --script FILE".into());
                    };
                    cmd_top_socket(socket, interval, polls)
                }
            }
        }
        _ => Err(String::new()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            if message.is_empty() {
                usage()
            } else {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        }
    }
}
