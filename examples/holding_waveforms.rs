//! Transistor-level view of why FLH needs (and only needs) the keeper:
//! simulates the Fig. 2 chain with and without the keeper latch and draws
//! ASCII waveforms of OUT1.
//!
//! Run with `cargo run --release --example holding_waveforms`.

use flh::analog::{
    gated_chain, simulate, steady_state_initial, GatedChainConfig, InputStimulus, NodeId, Trace,
    TransientConfig,
};
use flh::tech::Technology;

/// Renders a node's waveform as a row of ASCII levels.
fn sparkline(trace: &Trace, node: NodeId, vdd: f64, columns: usize) -> String {
    const GLYPHS: [char; 6] = ['_', '.', ':', '-', '=', '#'];
    let n = trace.len();
    (0..columns)
        .map(|c| {
            let idx = c * (n - 1) / (columns - 1).max(1);
            let v = (trace.snapshot(idx)[node.index()] / vdd).clamp(0.0, 1.0);
            GLYPHS[((v * (GLYPHS.len() - 1) as f64).round() as usize).min(GLYPHS.len() - 1)]
        })
        .collect()
}

fn run(tech: &Technology, with_keeper: bool) {
    let config = GatedChainConfig {
        with_keeper,
        sleep_start_ns: 2.0,
        input: InputStimulus::Step { at_ns: 7.0 },
        aggressor_cap_ff: 0.0,
        flh: flh::tech::FlhConfig::paper_default(),
    };
    let (circuit, probes) = gated_chain(tech, &config);
    let init = steady_state_initial(tech, &probes, &circuit);
    let trace = simulate(&circuit, &TransientConfig::for_window_ns(200.0), &init);

    println!(
        "--- gated first stage {} keeper (0..200 ns, sleep at 2 ns, IN rises at 7 ns) ---",
        if with_keeper { "WITH" } else { "WITHOUT" }
    );
    for (label, node) in [
        ("IN  ", probes.input),
        ("OUT1", probes.out1),
        ("OUT2", probes.out2),
        ("OUT3", probes.out3),
    ] {
        println!("  {label} {}", sparkline(&trace, node, tech.vdd, 72));
    }
    match trace.first_time_below(probes.out1, 0.6, 7.0) {
        Some(t) => println!("  OUT1 lost the held state after {:.1} ns", t - 7.0),
        None => println!("  OUT1 held above 600 mV for the whole window"),
    }
    println!();
}

fn main() {
    let tech = Technology::bptm70();
    println!(
        "Supply-gating the first-level gate floats its output; the paper's Fig. 2\n\
         shows the node decaying through gating-transistor leakage. The Fig. 3\n\
         keeper (two cross-coupled minimum inverters behind a transmission gate\n\
         that conducts only in sleep) pins the node. Reproduced below:\n"
    );
    run(&tech, false);
    run(&tech, true);
}
