//! Built-in self-test walkthrough (paper Section IV): a test-per-scan BIST
//! session with FLH holding, first on a single chain, then as a STUMPS
//! configuration with four parallel chains — same silence in the
//! combinational block, a quarter of the shift time.
//!
//! Run with `cargo run --release --example bist_selftest`.

use flh::atpg::{enumerate_stuck_faults, stuck_coverage, TestView};
use flh::bist::controller::run_test_per_scan;
use flh::bist::{run_stumps, signature_detects_fault, BistConfig};
use flh::core::{apply_style, DftStyle};
use flh::netlist::{generate_circuit, iscas89_profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = iscas89_profile("s838").ok_or("profile")?;
    let circuit = generate_circuit(&profile.generator_config())?;
    let flh = apply_style(&circuit, DftStyle::Flh)?;
    let mechanism = flh.hold_mechanism();
    let config = BistConfig::with_patterns(200);
    println!("circuit: {}", flh.netlist);

    // Single-chain session.
    let single = run_test_per_scan(&flh, &mechanism, &config)?;
    println!(
        "single chain : signature {:#010x}, comb toggles during shift = {}",
        single.signature, single.comb_toggles_during_shift
    );

    // STUMPS with 4 parallel chains.
    let stumps = run_stumps(&flh, &mechanism, 4, &config)?;
    println!(
        "STUMPS x4    : signature {:#010x}, shift cycles = {} (vs {} single-chain), comb toggles = {}",
        stumps.signature,
        stumps.shift_cycles,
        (config.patterns + 1) * flh.netlist.flip_flops().len(),
        stumps.comb_toggles_during_shift
    );
    assert_eq!(single.comb_toggles_during_shift, 0);
    assert_eq!(stumps.comb_toggles_during_shift, 0);

    // What does the pseudo-random set actually catch?
    let view = TestView::new(&flh.netlist)?;
    let faults = enumerate_stuck_faults(&flh.netlist);
    let detected_flags = stuck_coverage(&view, &faults, &single.applied);
    let detected = detected_flags.iter().filter(|&&d| d).count();
    println!(
        "pseudo-random stuck-at coverage: {}/{} ({:.1}%)",
        detected,
        faults.len(),
        100.0 * detected as f64 / faults.len() as f64
    );

    // Break the die with a fault the pattern set covers: the signature
    // flags it.
    let culprit = faults
        .iter()
        .zip(&detected_flags)
        .filter(|(_, &d)| d)
        .map(|(f, _)| *f)
        .nth(detected / 2)
        .ok_or("no detected fault")?;
    let caught = signature_detects_fault(&flh, &mechanism, &config, &culprit)?;
    println!(
        "injected {:?} at {} -> signature {}",
        culprit.stuck,
        flh.netlist.cell(culprit.driver(&flh.netlist)).name(),
        if caught {
            "MISCOMPARES (defect caught)"
        } else {
            "matches (escaped)"
        }
    );
    assert!(caught);
    Ok(())
}
