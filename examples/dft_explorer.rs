//! Interactive-ish DFT style explorer: pick an ISCAS89 profile by name
//! (default `s5378`) and get the full per-style cost breakdown plus the
//! scan-mode isolation behaviour.
//!
//! Run with `cargo run --release --example dft_explorer -- s838`.

use flh::core::{evaluate_all, DftStyle, EvalConfig};
use flh::netlist::{generate_circuit, iscas89_profile, iscas89_profiles, CircuitStats};
use flh::sim::{Logic, LogicSim, ScanChain, ScanController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s5378".into());
    let profile = iscas89_profile(&name).ok_or_else(|| {
        let known: Vec<&str> = iscas89_profiles().iter().map(|p| p.name).collect();
        format!("unknown circuit {name:?}; known: {known:?}")
    })?;
    let circuit = generate_circuit(&profile.generator_config())?;
    let stats = CircuitStats::compute(&circuit)?;

    println!("=== {} ===", profile.name);
    println!("{circuit}");
    println!(
        "logic depth {} | {:.2} FF fanout pins/FF | {:.2} unique first-level gates/FF",
        stats.logic_depth,
        stats.avg_ff_fanout(),
        stats.unique_fanout_ratio()
    );
    println!();

    let config = EvalConfig::paper_default();
    let evals = evaluate_all(&circuit, &config)?;
    println!(
        "{:>14} | {:>12} {:>10} | {:>10} {:>9} | {:>11} {:>9}",
        "style", "area (um2)", "area %", "delay (ps)", "delay %", "power (uW)", "power %"
    );
    for e in &evals {
        println!(
            "{:>14} | {:>12.2} {:>10.2} | {:>10.0} {:>9.2} | {:>11.2} {:>9.2}",
            e.style.label(),
            e.area_um2,
            e.area_increase_pct(),
            e.delay_ps,
            e.delay_increase_pct(),
            e.power_uw,
            e.power_increase_pct()
        );
    }

    // Demonstrate the scan-shift isolation difference on the live circuit.
    println!();
    let flh = flh::core::apply_style(&circuit, DftStyle::Flh)?;
    let mut sim = LogicSim::new(&flh.netlist)?;
    let controller = ScanController::new(ScanChain::from_netlist(&flh.netlist));
    for i in 0..flh.netlist.flip_flops().len() {
        sim.set_ff_by_index(i, Logic::from_bool(i % 2 == 0));
    }
    sim.set_inputs(&vec![Logic::Zero; flh.netlist.inputs().len()]);
    sim.settle();

    let comb_toggles = |sim: &LogicSim| -> u64 {
        flh.netlist
            .iter()
            .filter(|(_, c)| c.kind().is_combinational())
            .map(|(id, _)| sim.activity().toggles(id))
            .sum()
    };

    sim.reset_activity();
    let load: Vec<Logic> = (0..controller.chain().len())
        .map(|i| Logic::from_bool(i % 3 == 0))
        .collect();
    controller.shift_in(&mut sim, &load);
    let unheld = comb_toggles(&sim);

    sim.set_gated_cells(&flh.gated);
    sim.set_sleep(true);
    sim.reset_activity();
    let load2: Vec<Logic> = (0..controller.chain().len())
        .map(|i| Logic::from_bool(i % 5 == 0))
        .collect();
    controller.shift_in(&mut sim, &load2);
    let held = comb_toggles(&sim);

    println!(
        "scan-shifting one full load: {} combinational toggles unheld vs {} with FLH gating engaged",
        unheld, held
    );
    Ok(())
}
