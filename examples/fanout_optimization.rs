//! Section V walkthrough: the local fanout-reduction algorithm on the
//! paper's worst FLH case, s838 (one hot flip-flop fanning out to a dozen
//! first-level gates).
//!
//! Run with `cargo run --release --example fanout_optimization`.

use flh::core::{apply_style, optimize_fanout, DftStyle, FanoutOptConfig};
use flh::netlist::analysis::FanoutMap;
use flh::netlist::{generate_circuit, iscas89_profile};
use flh::tech::{CellLibrary, FlhPhysical};
use flh::timing::{analyze, FlhAnnotation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = iscas89_profile("s838").ok_or("profile present")?;
    let circuit = generate_circuit(&profile.generator_config())?;
    let flh = apply_style(&circuit, DftStyle::Flh)?;

    let config = FanoutOptConfig::paper_default();
    let library = CellLibrary::new(config.eval.technology.clone());
    let physical = FlhPhysical::derive(&config.eval.technology, &config.eval.flh);

    // Before.
    let fanouts = FanoutMap::compute(&flh.netlist);
    let hot = flh
        .netlist
        .flip_flops()
        .iter()
        .map(|&ff| (ff, fanouts.fanout_count(ff)))
        .max_by_key(|&(_, n)| n)
        .expect("flip-flops exist");
    let delay_before = analyze(
        &flh.netlist,
        &library,
        &config.eval.timing,
        Some(FlhAnnotation::new(&flh.gated, &physical)),
    )?
    .critical_delay_ps();
    println!("=== s838, before fanout optimization ===");
    println!(
        "first-level gates: {} ({} flip-flops); hottest FF {} drives {} gates",
        flh.gated.len(),
        flh.netlist.flip_flops().len(),
        flh.netlist.cell(hot.0).name(),
        hot.1
    );
    println!("critical delay with FLH gating: {delay_before:.0} ps");

    // Optimize.
    let result = optimize_fanout(&flh, &config)?;
    let delay_after = analyze(
        &result.netlist,
        &library,
        &config.eval.timing,
        Some(FlhAnnotation::new(&result.gated, &physical)),
    )?
    .critical_delay_ps();

    println!();
    println!("=== after ===");
    println!(
        "first-level gates: {} (was {}); {} inverters inserted, {} existing reused, {} flip-flops optimized",
        result.flg_after,
        result.flg_before,
        result.inverters_added,
        result.reused_inverters,
        result.optimized_ffs
    );
    println!(
        "FLH area overhead: {:.3} um2 -> {:.3} um2 ({:.1}% improvement)",
        result.area_overhead_before_um2,
        result.area_overhead_after_um2,
        result.area_improvement_pct()
    );
    println!("critical delay: {delay_before:.0} ps -> {delay_after:.0} ps (constraint: unchanged)");
    assert!(delay_after <= delay_before * (1.0 + 1e-9));
    Ok(())
}
