//! Fault diagnosis walkthrough: a "defective die" comes back from the
//! tester with failing responses; the diagnosis engine ranks candidate
//! stuck-at faults by how exactly they reproduce the observation — the
//! diagnosis capability the paper's introduction credits scan-based
//! structural testing with.
//!
//! Run with `cargo run --release --example fault_diagnosis`.

use flh::atpg::{
    diagnose, enumerate_stuck_faults, faulty_responses, stuck_coverage, Fault, TestView,
};
use flh::core::{apply_style, DftStyle};
use flh::netlist::{generate_circuit, iscas89_profile};
use flh_rng::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = iscas89_profile("s526").ok_or("profile")?;
    let circuit = generate_circuit(&profile.generator_config())?;
    let scanned = apply_style(&circuit, DftStyle::Flh)?;
    let view = TestView::new(&scanned.netlist)?;
    println!("circuit: {}", scanned.netlist);

    // The tester applies 300 random scan patterns.
    let mut rng = Rng::seed_from_u64(0xd1a6);
    let patterns: Vec<Vec<bool>> = (0..300)
        .map(|_| (0..view.assignable().len()).map(|_| rng.gen()).collect())
        .collect();

    // Secretly break the die.
    let faults = enumerate_stuck_faults(&scanned.netlist);
    let detected = stuck_coverage(&view, &faults, &patterns);
    let culprit: Fault = faults
        .iter()
        .zip(&detected)
        .filter(|(_, &d)| d)
        .nth(17)
        .map(|(f, _)| *f)
        .ok_or("no detectable fault")?;
    let observed = faulty_responses(&view, &culprit, &patterns);
    println!(
        "injected defect (hidden from the diagnoser): {:?} at {}",
        culprit.stuck,
        scanned
            .netlist
            .cell(culprit.driver(&scanned.netlist))
            .name()
    );

    // Diagnose from the observed responses alone.
    let ranking = diagnose(&view, &faults, &patterns, &observed);
    println!(
        "\ncandidates surviving the failure screen: {} of {}",
        ranking.len(),
        faults.len()
    );
    println!("\ntop candidates:");
    println!(
        "{:>4} {:>22} {:>10} {:>10} {:>8}",
        "#", "site", "matches", "explains", "perfect"
    );
    for (i, c) in ranking.iter().take(8).enumerate() {
        let site = scanned
            .netlist
            .cell(c.fault.driver(&scanned.netlist))
            .name();
        println!(
            "{:>4} {:>18}/{:?} {:>10} {:>10} {:>8}",
            i + 1,
            site,
            c.fault.stuck,
            c.matching_patterns,
            c.explained_failures,
            if c.is_perfect(patterns.len()) {
                "yes"
            } else {
                ""
            }
        );
    }

    let hit = ranking
        .iter()
        .take_while(|c| c.is_perfect(patterns.len()))
        .any(|c| c.fault == culprit);
    println!(
        "\nresult: the injected defect is {} the perfect-candidate set",
        if hit { "inside" } else { "OUTSIDE" }
    );
    assert!(hit);
    Ok(())
}
