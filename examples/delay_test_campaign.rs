//! End-to-end delay-test campaign on an ISCAS89-class circuit:
//!
//! 1. generate the s344-profile circuit and apply FLH;
//! 2. run two-pattern transition ATPG (arbitrary V1/V2, the application
//!    freedom FLH buys);
//! 3. replay every generated pattern pair through the cycle-accurate scan
//!    schedule of Fig. 5(b) under FLH supply-gating semantics, checking
//!    that the combinational block stays frozen while V2 shifts and that
//!    the captured responses match the test view's prediction.
//!
//! Run with `cargo run --release --example delay_test_campaign`.

use flh::atpg::transition::enumerate_transition_faults;
use flh::atpg::{transition_atpg, PodemConfig, TestView};
use flh::core::{apply_style, DftStyle};
use flh::netlist::generate_circuit;
use flh::netlist::iscas89_profile;
use flh::sim::{HoldMechanism, Logic, LogicSim, TwoPatternRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = iscas89_profile("s344").ok_or("unknown profile")?;
    let circuit = generate_circuit(&profile.generator_config())?;
    let flh = apply_style(&circuit, DftStyle::Flh)?;
    println!("circuit: {}", flh.netlist);
    println!("supply-gated first-level gates: {}", flh.gated.len());

    // Deterministic two-pattern ATPG.
    let view = TestView::new(&flh.netlist)?;
    let faults = enumerate_transition_faults(&flh.netlist);
    let result = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 0xcafe);
    println!(
        "ATPG: {} transition faults, {:.1}% coverage, {:.1}% efficiency, {} pattern pairs",
        faults.len(),
        result.coverage_pct(),
        result.efficiency_pct(),
        result.patterns.len()
    );

    // Replay through the Fig. 5(b) schedule with FLH holding.
    let n_pi = view.primary_input_count();
    let runner =
        TwoPatternRunner::for_netlist(&flh.netlist, HoldMechanism::SupplyGating(flh.gated.clone()));
    let mut sim = LogicSim::new(&flh.netlist)?;
    let mut isolated = true;
    let mut matched = 0usize;
    for pattern in &result.patterns {
        let to_logic =
            |bits: &[bool]| -> Vec<Logic> { bits.iter().map(|&b| Logic::from_bool(b)).collect() };
        let v1 = to_logic(&pattern.v1);
        let v2 = to_logic(&pattern.v2);
        let outcome = runner.apply(&mut sim, &v1[..n_pi], &v1[n_pi..], &v2[..n_pi], &v2[n_pi..]);
        if outcome.comb_toggles_during_shift != 0 {
            isolated = false;
        }
        // Predict the V2 response with the combinational test view.
        let words: Vec<u64> = pattern.v2.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let predicted = view.observe64(&view.eval64(&words, None));
        let n_po = flh.netlist.outputs().len();
        let po_match = outcome
            .po_response
            .iter()
            .zip(&predicted[..n_po])
            .all(|(got, want)| got.to_bool() == Some(*want & 1 == 1));
        let ff_match = outcome
            .captured
            .iter()
            .zip(&predicted[n_po..])
            .all(|(got, want)| got.to_bool() == Some(*want & 1 == 1));
        if po_match && ff_match {
            matched += 1;
        }
    }
    println!(
        "scan replay: {}/{} pattern pairs captured exactly the predicted response",
        matched,
        result.patterns.len()
    );
    println!(
        "combinational isolation during V2 shifting: {}",
        if isolated {
            "perfect (0 toggles beyond the gated boundary)"
        } else {
            "VIOLATED"
        }
    );
    assert_eq!(matched, result.patterns.len());
    assert!(isolated);
    Ok(())
}
