//! Quickstart: parse a tiny sequential circuit, apply the three DFT styles
//! and print what each one costs — the FLH pitch in thirty lines.
//!
//! Run with `cargo run --example quickstart`.

use flh::core::{evaluate_all, DftStyle, EvalConfig};
use flh::netlist::bench_io::parse_bench;
use flh::netlist::CircuitStats;

const BENCH: &str = "\
# a small sequential circuit in ISCAS89 .bench format
INPUT(g0)
INPUT(g1)
INPUT(g2)
OUTPUT(g17)
g5 = DFF(g10)
g6 = DFF(g11)
g7 = DFF(g13)
g14 = NOT(g0)
g10 = NOR(g14, g7)
g11 = NAND(g0, g5)
g13 = OR(g2, g6)
g8 = AND(g1, g6)
g12 = NOR(g8, g5)
g17 = NAND(g12, g13)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_bench(BENCH, "quickstart")?;
    let stats = CircuitStats::compute(&circuit)?;
    println!("circuit: {circuit}");
    println!(
        "state-input shape: {} FF fanout pins into logic, {} unique first-level gates",
        stats.total_ff_fanouts, stats.unique_first_level_gates
    );
    println!();

    let config = EvalConfig::paper_default();
    println!(
        "{:>14} | {:>9} {:>9} {:>9} | first-level gates / hold cells",
        "style", "area %", "delay %", "power %"
    );
    for eval in evaluate_all(&circuit, &config)? {
        if eval.style == DftStyle::PlainScan {
            println!(
                "{:>14} | {:>9} {:>9} {:>9} | baseline: {:.2} um2, {:.0} ps, {:.2} uW",
                eval.style.label(),
                "-",
                "-",
                "-",
                eval.base_area_um2,
                eval.base_delay_ps,
                eval.base_power_uw
            );
            continue;
        }
        println!(
            "{:>14} | {:>9.2} {:>9.2} {:>9.2} | {} / {}",
            eval.style.label(),
            eval.area_increase_pct(),
            eval.delay_increase_pct(),
            eval.power_increase_pct(),
            eval.first_level_gates,
            eval.hold_cells
        );
    }
    println!();
    println!(
        "FLH holds the combinational state by supply-gating the first-level gates,\n\
         so it needs no hold latch, no extra control signal, and no new logic level."
    );
    Ok(())
}
