/root/repo/target/release/deps/fig2_floating_decay-0b945f1ea72137f2.d: crates/bench/src/bin/fig2_floating_decay.rs

/root/repo/target/release/deps/fig2_floating_decay-0b945f1ea72137f2: crates/bench/src/bin/fig2_floating_decay.rs

crates/bench/src/bin/fig2_floating_decay.rs:
