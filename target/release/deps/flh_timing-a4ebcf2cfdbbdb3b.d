/root/repo/target/release/deps/flh_timing-a4ebcf2cfdbbdb3b.d: crates/timing/src/lib.rs

/root/repo/target/release/deps/libflh_timing-a4ebcf2cfdbbdb3b.rlib: crates/timing/src/lib.rs

/root/repo/target/release/deps/libflh_timing-a4ebcf2cfdbbdb3b.rmeta: crates/timing/src/lib.rs

crates/timing/src/lib.rs:
