/root/repo/target/release/deps/flh-1aec553b646fba27.d: src/bin/flh.rs

/root/repo/target/release/deps/flh-1aec553b646fba27: src/bin/flh.rs

src/bin/flh.rs:
