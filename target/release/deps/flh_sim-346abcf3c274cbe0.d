/root/repo/target/release/deps/flh_sim-346abcf3c274cbe0.d: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

/root/repo/target/release/deps/libflh_sim-346abcf3c274cbe0.rlib: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

/root/repo/target/release/deps/libflh_sim-346abcf3c274cbe0.rmeta: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

crates/sim/src/lib.rs:
crates/sim/src/compiled_sim.rs:
crates/sim/src/scan.rs:
crates/sim/src/simulator.rs:
crates/sim/src/two_pattern.rs:
crates/sim/src/value.rs:
