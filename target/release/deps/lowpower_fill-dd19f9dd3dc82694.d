/root/repo/target/release/deps/lowpower_fill-dd19f9dd3dc82694.d: crates/bench/src/bin/lowpower_fill.rs

/root/repo/target/release/deps/lowpower_fill-dd19f9dd3dc82694: crates/bench/src/bin/lowpower_fill.rs

crates/bench/src/bin/lowpower_fill.rs:
