/root/repo/target/release/deps/ablation_sizing-c241c50dafe6acc4.d: crates/bench/src/bin/ablation_sizing.rs

/root/repo/target/release/deps/ablation_sizing-c241c50dafe6acc4: crates/bench/src/bin/ablation_sizing.rs

crates/bench/src/bin/ablation_sizing.rs:
