/root/repo/target/release/deps/flh_netlist-1de45bdb737545a4.d: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_io.rs crates/netlist/src/cell.rs crates/netlist/src/compiled.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/generate.rs crates/netlist/src/graph.rs crates/netlist/src/mapper.rs crates/netlist/src/profiles.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libflh_netlist-1de45bdb737545a4.rlib: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_io.rs crates/netlist/src/cell.rs crates/netlist/src/compiled.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/generate.rs crates/netlist/src/graph.rs crates/netlist/src/mapper.rs crates/netlist/src/profiles.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libflh_netlist-1de45bdb737545a4.rmeta: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_io.rs crates/netlist/src/cell.rs crates/netlist/src/compiled.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/generate.rs crates/netlist/src/graph.rs crates/netlist/src/mapper.rs crates/netlist/src/profiles.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/analysis.rs:
crates/netlist/src/bench_io.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/compiled.rs:
crates/netlist/src/dot.rs:
crates/netlist/src/error.rs:
crates/netlist/src/generate.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/mapper.rs:
crates/netlist/src/profiles.rs:
crates/netlist/src/unroll.rs:
crates/netlist/src/verilog.rs:
