/root/repo/target/release/deps/flh_atpg-89c345c1328a2292.d: crates/atpg/src/lib.rs crates/atpg/src/application.rs crates/atpg/src/broadside.rs crates/atpg/src/diagnose.rs crates/atpg/src/fault.rs crates/atpg/src/fsim.rs crates/atpg/src/path.rs crates/atpg/src/patterns_io.rs crates/atpg/src/podem.rs crates/atpg/src/transition.rs crates/atpg/src/tview.rs

/root/repo/target/release/deps/libflh_atpg-89c345c1328a2292.rlib: crates/atpg/src/lib.rs crates/atpg/src/application.rs crates/atpg/src/broadside.rs crates/atpg/src/diagnose.rs crates/atpg/src/fault.rs crates/atpg/src/fsim.rs crates/atpg/src/path.rs crates/atpg/src/patterns_io.rs crates/atpg/src/podem.rs crates/atpg/src/transition.rs crates/atpg/src/tview.rs

/root/repo/target/release/deps/libflh_atpg-89c345c1328a2292.rmeta: crates/atpg/src/lib.rs crates/atpg/src/application.rs crates/atpg/src/broadside.rs crates/atpg/src/diagnose.rs crates/atpg/src/fault.rs crates/atpg/src/fsim.rs crates/atpg/src/path.rs crates/atpg/src/patterns_io.rs crates/atpg/src/podem.rs crates/atpg/src/transition.rs crates/atpg/src/tview.rs

crates/atpg/src/lib.rs:
crates/atpg/src/application.rs:
crates/atpg/src/broadside.rs:
crates/atpg/src/diagnose.rs:
crates/atpg/src/fault.rs:
crates/atpg/src/fsim.rs:
crates/atpg/src/path.rs:
crates/atpg/src/patterns_io.rs:
crates/atpg/src/podem.rs:
crates/atpg/src/transition.rs:
crates/atpg/src/tview.rs:
