/root/repo/target/release/deps/flh_power-6f5424ff726bb896.d: crates/power/src/lib.rs

/root/repo/target/release/deps/libflh_power-6f5424ff726bb896.rlib: crates/power/src/lib.rs

/root/repo/target/release/deps/libflh_power-6f5424ff726bb896.rmeta: crates/power/src/lib.rs

crates/power/src/lib.rs:
