/root/repo/target/release/deps/bist_coverage-8ab062b1d29f6816.d: crates/bench/src/bin/bist_coverage.rs

/root/repo/target/release/deps/bist_coverage-8ab062b1d29f6816: crates/bench/src/bin/bist_coverage.rs

crates/bench/src/bin/bist_coverage.rs:
