/root/repo/target/release/deps/flh_analog-05a95ecb50bfc95c.d: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

/root/repo/target/release/deps/libflh_analog-05a95ecb50bfc95c.rlib: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

/root/repo/target/release/deps/libflh_analog-05a95ecb50bfc95c.rmeta: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/circuit.rs:
crates/analog/src/experiments.rs:
crates/analog/src/transient.rs:
