/root/repo/target/release/deps/table3_power-956d21db5702c9ec.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/release/deps/table3_power-956d21db5702c9ec: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
