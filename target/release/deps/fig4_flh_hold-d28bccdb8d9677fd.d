/root/repo/target/release/deps/fig4_flh_hold-d28bccdb8d9677fd.d: crates/bench/src/bin/fig4_flh_hold.rs

/root/repo/target/release/deps/fig4_flh_hold-d28bccdb8d9677fd: crates/bench/src/bin/fig4_flh_hold.rs

crates/bench/src/bin/fig4_flh_hold.rs:
