/root/repo/target/release/deps/flh_bist-346df9bc32f656b2.d: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

/root/repo/target/release/deps/libflh_bist-346df9bc32f656b2.rlib: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

/root/repo/target/release/deps/libflh_bist-346df9bc32f656b2.rmeta: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

crates/bist/src/lib.rs:
crates/bist/src/controller.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/stumps.rs:
