/root/repo/target/release/deps/flh_rng-7f3281b7bb40f1d6.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libflh_rng-7f3281b7bb40f1d6.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libflh_rng-7f3281b7bb40f1d6.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
