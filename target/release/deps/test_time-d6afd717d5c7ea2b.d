/root/repo/target/release/deps/test_time-d6afd717d5c7ea2b.d: crates/bench/src/bin/test_time.rs

/root/repo/target/release/deps/test_time-d6afd717d5c7ea2b: crates/bench/src/bin/test_time.rs

crates/bench/src/bin/test_time.rs:
