/root/repo/target/release/deps/flh_tech-433fdcad7b44dbe6.d: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

/root/repo/target/release/deps/libflh_tech-433fdcad7b44dbe6.rlib: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

/root/repo/target/release/deps/libflh_tech-433fdcad7b44dbe6.rmeta: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

crates/tech/src/lib.rs:
crates/tech/src/cells.rs:
crates/tech/src/device.rs:
crates/tech/src/flh.rs:
