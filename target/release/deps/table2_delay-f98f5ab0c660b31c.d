/root/repo/target/release/deps/table2_delay-f98f5ab0c660b31c.d: crates/bench/src/bin/table2_delay.rs

/root/repo/target/release/deps/table2_delay-f98f5ab0c660b31c: crates/bench/src/bin/table2_delay.rs

crates/bench/src/bin/table2_delay.rs:
