/root/repo/target/release/deps/path_delay_critical-60f29b349d1acd7c.d: crates/bench/src/bin/path_delay_critical.rs

/root/repo/target/release/deps/path_delay_critical-60f29b349d1acd7c: crates/bench/src/bin/path_delay_critical.rs

crates/bench/src/bin/path_delay_critical.rs:
