/root/repo/target/release/deps/flh_bench-9071aebbb50977c3.d: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

/root/repo/target/release/deps/libflh_bench-9071aebbb50977c3.rlib: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

/root/repo/target/release/deps/libflh_bench-9071aebbb50977c3.rmeta: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/seed_baseline.rs:
