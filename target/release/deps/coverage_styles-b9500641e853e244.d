/root/repo/target/release/deps/coverage_styles-b9500641e853e244.d: crates/bench/src/bin/coverage_styles.rs

/root/repo/target/release/deps/coverage_styles-b9500641e853e244: crates/bench/src/bin/coverage_styles.rs

crates/bench/src/bin/coverage_styles.rs:
