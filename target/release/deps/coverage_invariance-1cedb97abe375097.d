/root/repo/target/release/deps/coverage_invariance-1cedb97abe375097.d: crates/bench/src/bin/coverage_invariance.rs

/root/repo/target/release/deps/coverage_invariance-1cedb97abe375097: crates/bench/src/bin/coverage_invariance.rs

crates/bench/src/bin/coverage_invariance.rs:
