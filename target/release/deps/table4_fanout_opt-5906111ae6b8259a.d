/root/repo/target/release/deps/table4_fanout_opt-5906111ae6b8259a.d: crates/bench/src/bin/table4_fanout_opt.rs

/root/repo/target/release/deps/table4_fanout_opt-5906111ae6b8259a: crates/bench/src/bin/table4_fanout_opt.rs

crates/bench/src/bin/table4_fanout_opt.rs:
