/root/repo/target/release/deps/flh-982283f54c82fbec.d: src/lib.rs

/root/repo/target/release/deps/libflh-982283f54c82fbec.rlib: src/lib.rs

/root/repo/target/release/deps/libflh-982283f54c82fbec.rmeta: src/lib.rs

src/lib.rs:
