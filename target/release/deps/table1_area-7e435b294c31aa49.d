/root/repo/target/release/deps/table1_area-7e435b294c31aa49.d: crates/bench/src/bin/table1_area.rs

/root/repo/target/release/deps/table1_area-7e435b294c31aa49: crates/bench/src/bin/table1_area.rs

crates/bench/src/bin/table1_area.rs:
