/root/repo/target/release/deps/variation_robustness-3836c3c542b33b7a.d: crates/bench/src/bin/variation_robustness.rs

/root/repo/target/release/deps/variation_robustness-3836c3c542b33b7a: crates/bench/src/bin/variation_robustness.rs

crates/bench/src/bin/variation_robustness.rs:
