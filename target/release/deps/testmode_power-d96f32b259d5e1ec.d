/root/repo/target/release/deps/testmode_power-d96f32b259d5e1ec.d: crates/bench/src/bin/testmode_power.rs

/root/repo/target/release/deps/testmode_power-d96f32b259d5e1ec: crates/bench/src/bin/testmode_power.rs

crates/bench/src/bin/testmode_power.rs:
