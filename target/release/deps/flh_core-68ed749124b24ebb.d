/root/repo/target/release/deps/flh_core-68ed749124b24ebb.d: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

/root/repo/target/release/deps/libflh_core-68ed749124b24ebb.rlib: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

/root/repo/target/release/deps/libflh_core-68ed749124b24ebb.rmeta: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

crates/core/src/lib.rs:
crates/core/src/fanout_opt.rs:
crates/core/src/mixed_sizing.rs:
crates/core/src/overhead.rs:
crates/core/src/scan.rs:
crates/core/src/styles.rs:
