/root/repo/target/release/libflh_rng.rlib: /root/repo/crates/rng/src/lib.rs
