/root/repo/target/debug/deps/coverage_invariance-267eaa14250e4806.d: crates/bench/src/bin/coverage_invariance.rs

/root/repo/target/debug/deps/coverage_invariance-267eaa14250e4806: crates/bench/src/bin/coverage_invariance.rs

crates/bench/src/bin/coverage_invariance.rs:
