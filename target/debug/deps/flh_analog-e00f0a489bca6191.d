/root/repo/target/debug/deps/flh_analog-e00f0a489bca6191.d: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

/root/repo/target/debug/deps/flh_analog-e00f0a489bca6191: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/circuit.rs:
crates/analog/src/experiments.rs:
crates/analog/src/transient.rs:
