/root/repo/target/debug/deps/test_time-f85a1b73676fcb22.d: crates/bench/src/bin/test_time.rs

/root/repo/target/debug/deps/test_time-f85a1b73676fcb22: crates/bench/src/bin/test_time.rs

crates/bench/src/bin/test_time.rs:
