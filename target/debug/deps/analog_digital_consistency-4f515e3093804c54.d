/root/repo/target/debug/deps/analog_digital_consistency-4f515e3093804c54.d: tests/analog_digital_consistency.rs

/root/repo/target/debug/deps/analog_digital_consistency-4f515e3093804c54: tests/analog_digital_consistency.rs

tests/analog_digital_consistency.rs:
