/root/repo/target/debug/deps/flh_netlist-b9901998ce8b2a03.d: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_io.rs crates/netlist/src/cell.rs crates/netlist/src/compiled.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/generate.rs crates/netlist/src/graph.rs crates/netlist/src/mapper.rs crates/netlist/src/profiles.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/flh_netlist-b9901998ce8b2a03: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench_io.rs crates/netlist/src/cell.rs crates/netlist/src/compiled.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/generate.rs crates/netlist/src/graph.rs crates/netlist/src/mapper.rs crates/netlist/src/profiles.rs crates/netlist/src/unroll.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/analysis.rs:
crates/netlist/src/bench_io.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/compiled.rs:
crates/netlist/src/dot.rs:
crates/netlist/src/error.rs:
crates/netlist/src/generate.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/mapper.rs:
crates/netlist/src/profiles.rs:
crates/netlist/src/unroll.rs:
crates/netlist/src/verilog.rs:
