/root/repo/target/debug/deps/flh_rng-42d05d317bb04741.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libflh_rng-42d05d317bb04741.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libflh_rng-42d05d317bb04741.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
