/root/repo/target/debug/deps/properties-678e0e9d0bc72f5e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-678e0e9d0bc72f5e: tests/properties.rs

tests/properties.rs:
