/root/repo/target/debug/deps/flh_timing-38035ff54f34eaf4.d: crates/timing/src/lib.rs

/root/repo/target/debug/deps/flh_timing-38035ff54f34eaf4: crates/timing/src/lib.rs

crates/timing/src/lib.rs:
