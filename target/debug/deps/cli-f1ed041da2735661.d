/root/repo/target/debug/deps/cli-f1ed041da2735661.d: tests/cli.rs

/root/repo/target/debug/deps/cli-f1ed041da2735661: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_flh=/root/repo/target/debug/flh
