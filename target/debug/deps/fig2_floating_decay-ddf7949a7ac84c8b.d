/root/repo/target/debug/deps/fig2_floating_decay-ddf7949a7ac84c8b.d: crates/bench/src/bin/fig2_floating_decay.rs

/root/repo/target/debug/deps/fig2_floating_decay-ddf7949a7ac84c8b: crates/bench/src/bin/fig2_floating_decay.rs

crates/bench/src/bin/fig2_floating_decay.rs:
