/root/repo/target/debug/deps/coverage_styles-391f8f048e395ac8.d: crates/bench/src/bin/coverage_styles.rs

/root/repo/target/debug/deps/coverage_styles-391f8f048e395ac8: crates/bench/src/bin/coverage_styles.rs

crates/bench/src/bin/coverage_styles.rs:
