/root/repo/target/debug/deps/ablation_sizing-c01dfeacf4efeaa5.d: crates/bench/src/bin/ablation_sizing.rs

/root/repo/target/debug/deps/ablation_sizing-c01dfeacf4efeaa5: crates/bench/src/bin/ablation_sizing.rs

crates/bench/src/bin/ablation_sizing.rs:
