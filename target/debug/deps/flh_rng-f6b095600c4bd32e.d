/root/repo/target/debug/deps/flh_rng-f6b095600c4bd32e.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/flh_rng-f6b095600c4bd32e: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
