/root/repo/target/debug/deps/lowpower_fill-c58bc03aca5c81e6.d: crates/bench/src/bin/lowpower_fill.rs

/root/repo/target/debug/deps/lowpower_fill-c58bc03aca5c81e6: crates/bench/src/bin/lowpower_fill.rs

crates/bench/src/bin/lowpower_fill.rs:
