/root/repo/target/debug/deps/table3_power-4cab78669d52a80b.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/debug/deps/table3_power-4cab78669d52a80b: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
