/root/repo/target/debug/deps/flh_tech-052acc26ac032dcf.d: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

/root/repo/target/debug/deps/libflh_tech-052acc26ac032dcf.rlib: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

/root/repo/target/debug/deps/libflh_tech-052acc26ac032dcf.rmeta: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

crates/tech/src/lib.rs:
crates/tech/src/cells.rs:
crates/tech/src/device.rs:
crates/tech/src/flh.rs:
