/root/repo/target/debug/deps/flh_core-b18d5107a2c58539.d: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

/root/repo/target/debug/deps/flh_core-b18d5107a2c58539: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

crates/core/src/lib.rs:
crates/core/src/fanout_opt.rs:
crates/core/src/mixed_sizing.rs:
crates/core/src/overhead.rs:
crates/core/src/scan.rs:
crates/core/src/styles.rs:
