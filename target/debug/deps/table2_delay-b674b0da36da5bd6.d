/root/repo/target/debug/deps/table2_delay-b674b0da36da5bd6.d: crates/bench/src/bin/table2_delay.rs

/root/repo/target/debug/deps/table2_delay-b674b0da36da5bd6: crates/bench/src/bin/table2_delay.rs

crates/bench/src/bin/table2_delay.rs:
