/root/repo/target/debug/deps/flh_bench-2c4141d85722d204.d: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

/root/repo/target/debug/deps/flh_bench-2c4141d85722d204: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/seed_baseline.rs:
