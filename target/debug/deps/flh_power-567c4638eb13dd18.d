/root/repo/target/debug/deps/flh_power-567c4638eb13dd18.d: crates/power/src/lib.rs

/root/repo/target/debug/deps/flh_power-567c4638eb13dd18: crates/power/src/lib.rs

crates/power/src/lib.rs:
