/root/repo/target/debug/deps/flh_bench-ec9de2e73ea3864b.d: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

/root/repo/target/debug/deps/libflh_bench-ec9de2e73ea3864b.rlib: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

/root/repo/target/debug/deps/libflh_bench-ec9de2e73ea3864b.rmeta: crates/bench/src/lib.rs crates/bench/src/seed_baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/seed_baseline.rs:
