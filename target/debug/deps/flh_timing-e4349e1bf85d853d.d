/root/repo/target/debug/deps/flh_timing-e4349e1bf85d853d.d: crates/timing/src/lib.rs

/root/repo/target/debug/deps/libflh_timing-e4349e1bf85d853d.rlib: crates/timing/src/lib.rs

/root/repo/target/debug/deps/libflh_timing-e4349e1bf85d853d.rmeta: crates/timing/src/lib.rs

crates/timing/src/lib.rs:
