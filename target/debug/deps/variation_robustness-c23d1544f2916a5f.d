/root/repo/target/debug/deps/variation_robustness-c23d1544f2916a5f.d: crates/bench/src/bin/variation_robustness.rs

/root/repo/target/debug/deps/variation_robustness-c23d1544f2916a5f: crates/bench/src/bin/variation_robustness.rs

crates/bench/src/bin/variation_robustness.rs:
