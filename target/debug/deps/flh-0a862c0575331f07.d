/root/repo/target/debug/deps/flh-0a862c0575331f07.d: src/bin/flh.rs

/root/repo/target/debug/deps/flh-0a862c0575331f07: src/bin/flh.rs

src/bin/flh.rs:
