/root/repo/target/debug/deps/bist_coverage-c71c30f96734e38a.d: crates/bench/src/bin/bist_coverage.rs

/root/repo/target/debug/deps/bist_coverage-c71c30f96734e38a: crates/bench/src/bin/bist_coverage.rs

crates/bench/src/bin/bist_coverage.rs:
