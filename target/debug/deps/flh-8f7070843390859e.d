/root/repo/target/debug/deps/flh-8f7070843390859e.d: src/lib.rs

/root/repo/target/debug/deps/flh-8f7070843390859e: src/lib.rs

src/lib.rs:
