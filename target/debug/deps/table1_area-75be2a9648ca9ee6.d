/root/repo/target/debug/deps/table1_area-75be2a9648ca9ee6.d: crates/bench/src/bin/table1_area.rs

/root/repo/target/debug/deps/table1_area-75be2a9648ca9ee6: crates/bench/src/bin/table1_area.rs

crates/bench/src/bin/table1_area.rs:
