/root/repo/target/debug/deps/flh_power-9e0aa58ef4d54002.d: crates/power/src/lib.rs

/root/repo/target/debug/deps/libflh_power-9e0aa58ef4d54002.rlib: crates/power/src/lib.rs

/root/repo/target/debug/deps/libflh_power-9e0aa58ef4d54002.rmeta: crates/power/src/lib.rs

crates/power/src/lib.rs:
