/root/repo/target/debug/deps/flh_core-eef0112a3cd241e3.d: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

/root/repo/target/debug/deps/libflh_core-eef0112a3cd241e3.rlib: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

/root/repo/target/debug/deps/libflh_core-eef0112a3cd241e3.rmeta: crates/core/src/lib.rs crates/core/src/fanout_opt.rs crates/core/src/mixed_sizing.rs crates/core/src/overhead.rs crates/core/src/scan.rs crates/core/src/styles.rs

crates/core/src/lib.rs:
crates/core/src/fanout_opt.rs:
crates/core/src/mixed_sizing.rs:
crates/core/src/overhead.rs:
crates/core/src/scan.rs:
crates/core/src/styles.rs:
