/root/repo/target/debug/deps/two_pattern_equivalence-d4e86e50c653595d.d: tests/two_pattern_equivalence.rs

/root/repo/target/debug/deps/two_pattern_equivalence-d4e86e50c653595d: tests/two_pattern_equivalence.rs

tests/two_pattern_equivalence.rs:
