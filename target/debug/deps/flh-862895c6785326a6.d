/root/repo/target/debug/deps/flh-862895c6785326a6.d: src/lib.rs

/root/repo/target/debug/deps/libflh-862895c6785326a6.rlib: src/lib.rs

/root/repo/target/debug/deps/libflh-862895c6785326a6.rmeta: src/lib.rs

src/lib.rs:
