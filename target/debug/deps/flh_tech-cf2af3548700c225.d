/root/repo/target/debug/deps/flh_tech-cf2af3548700c225.d: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

/root/repo/target/debug/deps/flh_tech-cf2af3548700c225: crates/tech/src/lib.rs crates/tech/src/cells.rs crates/tech/src/device.rs crates/tech/src/flh.rs

crates/tech/src/lib.rs:
crates/tech/src/cells.rs:
crates/tech/src/device.rs:
crates/tech/src/flh.rs:
