/root/repo/target/debug/deps/flh_sim-5bcf796163460607.d: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

/root/repo/target/debug/deps/libflh_sim-5bcf796163460607.rlib: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

/root/repo/target/debug/deps/libflh_sim-5bcf796163460607.rmeta: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

crates/sim/src/lib.rs:
crates/sim/src/compiled_sim.rs:
crates/sim/src/scan.rs:
crates/sim/src/simulator.rs:
crates/sim/src/two_pattern.rs:
crates/sim/src/value.rs:
