/root/repo/target/debug/deps/coverage_invariance-107dc6c232154753.d: tests/coverage_invariance.rs

/root/repo/target/debug/deps/coverage_invariance-107dc6c232154753: tests/coverage_invariance.rs

tests/coverage_invariance.rs:
