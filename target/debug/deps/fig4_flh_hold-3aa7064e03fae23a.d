/root/repo/target/debug/deps/fig4_flh_hold-3aa7064e03fae23a.d: crates/bench/src/bin/fig4_flh_hold.rs

/root/repo/target/debug/deps/fig4_flh_hold-3aa7064e03fae23a: crates/bench/src/bin/fig4_flh_hold.rs

crates/bench/src/bin/fig4_flh_hold.rs:
