/root/repo/target/debug/deps/testmode_power-b028d24f682ab797.d: crates/bench/src/bin/testmode_power.rs

/root/repo/target/debug/deps/testmode_power-b028d24f682ab797: crates/bench/src/bin/testmode_power.rs

crates/bench/src/bin/testmode_power.rs:
