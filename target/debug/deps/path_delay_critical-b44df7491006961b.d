/root/repo/target/debug/deps/path_delay_critical-b44df7491006961b.d: crates/bench/src/bin/path_delay_critical.rs

/root/repo/target/debug/deps/path_delay_critical-b44df7491006961b: crates/bench/src/bin/path_delay_critical.rs

crates/bench/src/bin/path_delay_critical.rs:
