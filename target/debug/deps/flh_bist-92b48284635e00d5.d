/root/repo/target/debug/deps/flh_bist-92b48284635e00d5.d: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

/root/repo/target/debug/deps/flh_bist-92b48284635e00d5: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

crates/bist/src/lib.rs:
crates/bist/src/controller.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/stumps.rs:
