/root/repo/target/debug/deps/flh-0f24f32a4657ca10.d: src/bin/flh.rs

/root/repo/target/debug/deps/flh-0f24f32a4657ca10: src/bin/flh.rs

src/bin/flh.rs:
