/root/repo/target/debug/deps/flh_bist-fd7aab47e5a44c3d.d: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

/root/repo/target/debug/deps/libflh_bist-fd7aab47e5a44c3d.rlib: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

/root/repo/target/debug/deps/libflh_bist-fd7aab47e5a44c3d.rmeta: crates/bist/src/lib.rs crates/bist/src/controller.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/stumps.rs

crates/bist/src/lib.rs:
crates/bist/src/controller.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/stumps.rs:
