/root/repo/target/debug/deps/full_flow-24ee3514e3e8bb58.d: tests/full_flow.rs

/root/repo/target/debug/deps/full_flow-24ee3514e3e8bb58: tests/full_flow.rs

tests/full_flow.rs:
