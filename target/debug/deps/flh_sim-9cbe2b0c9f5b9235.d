/root/repo/target/debug/deps/flh_sim-9cbe2b0c9f5b9235.d: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

/root/repo/target/debug/deps/flh_sim-9cbe2b0c9f5b9235: crates/sim/src/lib.rs crates/sim/src/compiled_sim.rs crates/sim/src/scan.rs crates/sim/src/simulator.rs crates/sim/src/two_pattern.rs crates/sim/src/value.rs

crates/sim/src/lib.rs:
crates/sim/src/compiled_sim.rs:
crates/sim/src/scan.rs:
crates/sim/src/simulator.rs:
crates/sim/src/two_pattern.rs:
crates/sim/src/value.rs:
