/root/repo/target/debug/deps/table4_fanout_opt-aa3975b672d66ecc.d: crates/bench/src/bin/table4_fanout_opt.rs

/root/repo/target/debug/deps/table4_fanout_opt-aa3975b672d66ecc: crates/bench/src/bin/table4_fanout_opt.rs

crates/bench/src/bin/table4_fanout_opt.rs:
