/root/repo/target/debug/deps/flh_analog-5f4a17c2c50cee13.d: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

/root/repo/target/debug/deps/libflh_analog-5f4a17c2c50cee13.rlib: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

/root/repo/target/debug/deps/libflh_analog-5f4a17c2c50cee13.rmeta: crates/analog/src/lib.rs crates/analog/src/circuit.rs crates/analog/src/experiments.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/circuit.rs:
crates/analog/src/experiments.rs:
crates/analog/src/transient.rs:
