/root/repo/target/debug/examples/quickstart-6451219dd6bbd045.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6451219dd6bbd045: examples/quickstart.rs

examples/quickstart.rs:
