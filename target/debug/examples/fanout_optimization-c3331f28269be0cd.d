/root/repo/target/debug/examples/fanout_optimization-c3331f28269be0cd.d: examples/fanout_optimization.rs

/root/repo/target/debug/examples/fanout_optimization-c3331f28269be0cd: examples/fanout_optimization.rs

examples/fanout_optimization.rs:
