/root/repo/target/debug/examples/bist_selftest-9b0f84058ff61572.d: examples/bist_selftest.rs

/root/repo/target/debug/examples/bist_selftest-9b0f84058ff61572: examples/bist_selftest.rs

examples/bist_selftest.rs:
