/root/repo/target/debug/examples/delay_test_campaign-52e3d23afa74bf00.d: examples/delay_test_campaign.rs

/root/repo/target/debug/examples/delay_test_campaign-52e3d23afa74bf00: examples/delay_test_campaign.rs

examples/delay_test_campaign.rs:
