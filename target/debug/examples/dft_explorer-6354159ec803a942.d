/root/repo/target/debug/examples/dft_explorer-6354159ec803a942.d: examples/dft_explorer.rs

/root/repo/target/debug/examples/dft_explorer-6354159ec803a942: examples/dft_explorer.rs

examples/dft_explorer.rs:
