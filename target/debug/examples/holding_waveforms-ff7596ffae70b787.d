/root/repo/target/debug/examples/holding_waveforms-ff7596ffae70b787.d: examples/holding_waveforms.rs

/root/repo/target/debug/examples/holding_waveforms-ff7596ffae70b787: examples/holding_waveforms.rs

examples/holding_waveforms.rs:
