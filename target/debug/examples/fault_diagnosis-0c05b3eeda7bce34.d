/root/repo/target/debug/examples/fault_diagnosis-0c05b3eeda7bce34.d: examples/fault_diagnosis.rs

/root/repo/target/debug/examples/fault_diagnosis-0c05b3eeda7bce34: examples/fault_diagnosis.rs

examples/fault_diagnosis.rs:
